"""Regenerate ``BENCH_PR9.json``: vectorized planning-kernel speedup + identity.

Times the planning hot loops (convex-hull cheapest insertion, 2-opt, Or-opt,
nearest neighbour) at increasing target counts twice:

* **baseline** — ``repro.planning.kernels`` disabled: the original scalar
  Python loops, exactly the pre-PR 9 planning model;
* **optimized** — the default configuration: the NumPy delta-matrix kernels.

Before any number is written the harness asserts byte identity three ways:

1. every PR 4 golden strategy call, re-planned with the vector kernels on,
   must serialize byte-equal to ``tests/golden/pr4_plans.json``;
2. >= 200 fuzzed planning specs must produce byte-equal serialized plans
   with the kernels on and off (tour caches cleared between legs);
3. at every timed grid size that has a scalar baseline, the scalar and
   vector tours must match node for node.

The scalar cheapest-insertion loop is O(n^3) Python, so the baseline is only
timed up to ``--scalar-cap`` targets (single round); the vector kernels are
timed across the whole grid.  The >= ``--min-speedup`` floor is asserted at
the largest scalar-measured size.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pr9.py [--out BENCH_PR9.json]
        [--grid 500,1000,2000] [--scalar-cap 1000] [--rounds 3]
        [--fuzz-cases 200] [--min-speedup 5.0]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

# plan_golden lives in tests/ (shared with the pytest suite via conftest).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from plan_golden import golden_scenarios, serialize_plan  # noqa: E402

from repro import __version__  # noqa: E402
from repro.baselines.base import get_strategy, strategy_params  # noqa: E402
from repro.geometry.cache import caching_disabled, clear_caches  # noqa: E402
from repro.geometry.point import Point  # noqa: E402
from repro.graphs.hamiltonian import (  # noqa: E402
    convex_hull_insertion_tour,
    nearest_neighbor_tour,
)
from repro.graphs.improve import or_opt, two_opt  # noqa: E402
from repro.planning import kernels  # noqa: E402
from repro.scenarios import ScenarioSpec  # noqa: E402

GOLDEN_PLANS = Path(__file__).resolve().parent.parent / "tests" / "golden" / "pr4_plans.json"

FAMILIES = ["uniform", "grid-jitter", "clustered", "ring"]
STRATEGIES = [
    "b-tctp", "w-tctp", "chb", "sweep", "random",
    "b-tctp-cw", "sw-tctp", "cb-tctp", "staggered-chb",
]


def timeit(fn, *, warmup: int = 1, rounds: int = 3) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "mean_s": statistics.mean(samples),
        "min_s": min(samples),
        "rounds": rounds,
        "result": result,
    }


# -- identity legs --------------------------------------------------------- #

def assert_golden_identity() -> int:
    """Re-plan every PR 4 golden call with the kernels on; compare to disk."""
    golden = json.loads(GOLDEN_PLANS.read_text())
    scenarios = golden_scenarios()
    for entry in golden:
        clear_caches()
        plan = get_strategy(entry["strategy"], **entry["kwargs"]).plan(
            scenarios[entry["scenario"]].fresh_copy()
        )
        got = json.dumps(serialize_plan(plan), sort_keys=True)
        want = json.dumps(entry["plan"], sort_keys=True)
        if got != want:
            raise SystemExit(
                "golden plan diverged under vector kernels: "
                f"{entry['scenario']}/{entry['strategy']}"
            )
    return len(golden)


def fuzz_case(rng: np.random.Generator) -> tuple[str, object, dict]:
    strategy = STRATEGIES[int(rng.integers(len(STRATEGIES)))]
    declared = strategy_params(strategy)
    params = {}
    if "tsp_method" in declared:
        params["tsp_method"] = ["hull-insertion", "nearest-neighbor"][int(rng.integers(2))]
    if "improve_tour" in declared:
        params["improve_tour"] = bool(rng.integers(2))
    if "seed" in declared:
        params["seed"] = int(rng.integers(1_000_000))
    scenario = ScenarioSpec(
        FAMILIES[int(rng.integers(len(FAMILIES)))],
        {
            "num_targets": int(rng.integers(4, 40)),
            "num_mules": int(rng.integers(1, 5)),
            "num_vips": int(rng.integers(0, 3)),
        },
        seed=int(rng.integers(1_000)),
    )
    return strategy, scenario, params


def assert_fuzz_identity(cases: int, seed: int) -> int:
    rng = np.random.default_rng(seed)
    for index in range(cases):
        strategy, scenario, params = fuzz_case(rng)
        build_seed = params.get("seed", 0)
        clear_caches()
        with kernels.vector_disabled():
            scalar = serialize_plan(
                get_strategy(strategy, **params).plan(scenario.build(build_seed))
            )
        clear_caches()
        vector = serialize_plan(
            get_strategy(strategy, **params).plan(scenario.build(build_seed))
        )
        if json.dumps(vector, sort_keys=True) != json.dumps(scalar, sort_keys=True):
            raise SystemExit(
                f"fuzzed plan diverged under vector kernels (case {index}, "
                f"seed {seed}): {strategy} on {scenario.family} "
                f"params={params}"
            )
    return cases


# -- timing leg ------------------------------------------------------------ #

def planning_workload(coords: dict, improve_rounds: int):
    """One full planning pass; returns the tour orders for identity checks."""
    clear_caches()
    with caching_disabled():
        hull = convex_hull_insertion_tour(coords)
        improved = two_opt(hull, max_rounds=improve_rounds)
        relocated = or_opt(improved, max_rounds=improve_rounds)
        nn = nearest_neighbor_tour(coords)
    return [list(t.order) for t in (hull, improved, relocated, nn)]


def grid_coords(n: int) -> dict:
    rng = np.random.default_rng(20260808 + n)
    pts = rng.uniform(0, 10_000, (n, 2))
    return {f"t{i}": Point(float(x), float(y)) for i, (x, y) in enumerate(pts)}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR9.json")
    parser.add_argument("--grid", default="500,1000,2000",
                        help="comma-separated target counts to time")
    parser.add_argument("--scalar-cap", type=int, default=1000,
                        help="largest n for which the O(n^3) scalar baseline is timed")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds for the vector kernels")
    parser.add_argument("--improve-rounds", type=int, default=5,
                        help="max_rounds cap for the timed 2-opt/Or-opt passes")
    parser.add_argument("--fuzz-cases", type=int, default=200)
    parser.add_argument("--fuzz-seed", type=int, default=20260808)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="median speedup floor at the largest scalar-timed n")
    args = parser.parse_args()

    if not kernels.vector_enabled():
        raise SystemExit("REPRO_PLANNING_VECTOR is off; the bench needs the default")

    # -- identity first: no number is recorded for a divergent kernel ------ #
    golden_count = assert_golden_identity()
    print(f"golden identity: {golden_count} PR 4 plans byte-identical")
    fuzz_count = assert_fuzz_identity(args.fuzz_cases, args.fuzz_seed)
    print(f"fuzz identity: {fuzz_count} seeded specs byte-identical")

    # -- then the timings -------------------------------------------------- #
    grid = [int(tok) for tok in args.grid.split(",") if tok.strip()]
    scales = []
    headline = None
    for n in grid:
        coords = grid_coords(n)
        optimized = timeit(
            lambda: planning_workload(coords, args.improve_rounds),
            rounds=args.rounds,
        )
        entry = {
            "num_targets": n,
            "optimized": {k: v for k, v in optimized.items() if k != "result"},
        }
        if n <= args.scalar_cap:
            def run_scalar():
                with kernels.vector_disabled():
                    return planning_workload(coords, args.improve_rounds)

            baseline = timeit(run_scalar, warmup=0, rounds=1)
            if baseline["result"] != optimized["result"]:
                raise SystemExit(f"tour orders diverged at n={n}")
            entry["baseline"] = {k: v for k, v in baseline.items() if k != "result"}
            entry["speedup_median"] = baseline["median_s"] / optimized["median_s"]
            entry["orders_identical"] = True
            headline = entry
        scales.append(entry)
        speedup = entry.get("speedup_median")
        print(
            f"n={n}: vector {optimized['median_s']:.3f}s"
            + (f", scalar {entry['baseline']['median_s']:.3f}s"
               f" -> {speedup:.1f}x" if speedup else " (scalar not timed)")
        )

    if headline is None:
        raise SystemExit("no grid size <= --scalar-cap; nothing to assert against")
    if headline["speedup_median"] < args.min_speedup:
        raise SystemExit(
            f"speedup {headline['speedup_median']:.2f}x at "
            f"n={headline['num_targets']} is below the "
            f"{args.min_speedup}x floor"
        )

    payload = {
        "benchmark": "vectorized planning kernels vs scalar Python loops",
        "workload": {
            "passes": ["hull-insertion", "two-opt", "or-opt", "nearest-neighbor"],
            "improve_rounds": args.improve_rounds,
            "grid": grid,
            "scalar_cap": args.scalar_cap,
        },
        "scales": scales,
        "speedup_median": headline["speedup_median"],
        "headline_num_targets": headline["num_targets"],
        "golden_plans_byte_identical": True,
        "golden_plan_count": golden_count,
        "fuzzed_plans_byte_identical": True,
        "fuzzed_plan_count": fuzz_count,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "library_version": __version__,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"speedup (median, n={headline['num_targets']}): "
        f"{payload['speedup_median']:.2f}x -> {args.out}"
    )


if __name__ == "__main__":
    main()
