"""EXT-E1 benchmark — mule survival and delivered data, W-TCTP vs RW-TCTP.

The paper's Section V lists "energy efficiency of DM" among its metrics without
a dedicated figure; this benchmark times the extension experiment from
DESIGN.md and asserts its expected outcome: with the recharge schedule the
fleet survives and delivers at least as much data.
"""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.ext_energy import run_energy_experiment

BATTERY = 60_000.0


@pytest.fixture(scope="module")
def energy_settings():
    return ExperimentSettings.quick(replications=2, horizon=30_000.0,
                                    num_targets=8, num_mules=2)


@pytest.mark.benchmark(group="extensions")
def test_energy_survival(benchmark, energy_settings):
    data = benchmark(run_energy_experiment, energy_settings,
                     battery_capacities=(BATTERY,))

    detail = data["detail"][BATTERY]
    assert detail["RW-TCTP"]["survival"] >= detail["W-TCTP"]["survival"]
    assert detail["RW-TCTP"]["survival"] == pytest.approx(1.0)
    assert detail["W-TCTP"]["survival"] < 1.0
    assert detail["RW-TCTP"]["recharges"] > 0
    assert detail["RW-TCTP"]["delivered"] >= detail["W-TCTP"]["delivered"]
