"""FIG8 benchmark — SD of visiting intervals, CHB vs TCTP over (#targets, #mules).

Times the Figure 8 sweep and re-asserts its shape: TCTP's SD is zero for every
combination, CHB's is positive.
"""

import pytest

from repro.experiments.fig8_sd import run_fig8


@pytest.mark.benchmark(group="figures")
def test_fig8_sd_grid(benchmark, bench_settings):
    data = benchmark(run_fig8, bench_settings,
                     target_counts=(10, 16), mule_counts=(2, 4))

    assert set(data["grid"]) == {"chb", "b-tctp"}
    assert len(data["rows"]) == 4

    for value in data["grid"]["b-tctp"].values():
        assert value == pytest.approx(0.0, abs=1e-6), "TCTP's SD must stay at zero (Figure 8)"
    for value in data["grid"]["chb"].values():
        assert value > 0.0, "CHB's SD must be positive (Figure 8)"
