"""FIG9 benchmark — average DCDT of the Shortest-Length vs Balancing-Length policies.

Times the Figure 9 sweep over (#VIPs, VIP weight) and re-asserts the shape:
DCDT grows with VIP count and weight, and the Shortest-Length policy (shorter
WPP) never reports a larger DCDT than the Balancing-Length policy.
"""

import pytest

from repro.experiments.fig9_policy_dcdt import run_fig9

VIP_COUNTS = (1, 2)
VIP_WEIGHTS = (2, 3)


@pytest.mark.benchmark(group="figures")
def test_fig9_policy_dcdt(benchmark, bench_settings):
    data = benchmark(run_fig9, bench_settings, vip_counts=VIP_COUNTS, vip_weights=VIP_WEIGHTS)

    for policy in ("shortest", "balanced"):
        grid = data["dcdt"][policy]
        # increasing VIP weight (at fixed count) increases the DCDT
        assert grid[(1, 3)] > grid[(1, 2)]
        # increasing the number of VIPs (at fixed weight) does not decrease it
        assert grid[(2, 3)] >= grid[(1, 3)] * 0.95

    for key in data["dcdt"]["shortest"]:
        assert data["dcdt"]["shortest"][key] <= data["dcdt"]["balanced"][key] + 1e-6
        assert data["wpp_length"]["shortest"][key] <= data["wpp_length"]["balanced"][key] + 1e-6
