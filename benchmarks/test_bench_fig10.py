"""FIG10 benchmark — average SD of the Shortest-Length vs Balancing-Length policies.

Times the Figure 10 sweep and re-asserts the shape: the Balancing-Length
policy keeps the SD of the visiting intervals smaller than the Shortest-Length
policy (in aggregate over the sweep), which is the figure's headline claim.
"""

import pytest

from repro.experiments.fig10_policy_sd import run_fig10

VIP_COUNTS = (1, 2)
VIP_WEIGHTS = (2, 3)


@pytest.mark.benchmark(group="figures")
def test_fig10_policy_sd(benchmark, bench_settings):
    data = benchmark(run_fig10, bench_settings, vip_counts=VIP_COUNTS, vip_weights=VIP_WEIGHTS)

    shortest_total = sum(data["sd"]["shortest"].values())
    balanced_total = sum(data["sd"]["balanced"].values())
    assert balanced_total < shortest_total, (
        "Balancing-Length should keep the SD of visiting intervals below Shortest-Length"
    )
    # The SD under Shortest-Length grows quickly with the VIP weight (Figure 10's steep axis).
    assert data["sd"]["shortest"][(2, 3)] > data["sd"]["balanced"][(2, 3)]
