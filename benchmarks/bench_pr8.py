"""Regenerate ``BENCH_PR8.json``: batched-fastpath speedup + shard/merge parity.

Times a fastpath-eligible campaign sweep (four deterministic loop strategies
on a pinned 12-target / 3-mule layout, replicated out to ``--cells`` cells)
twice:

* **baseline** — ``repro.sim.batchpath`` disabled: every cell dispatches
  through the per-cell scalar fast path, exactly the PR 3 execution model;
* **optimized** — the default configuration: eligible cells are grouped by
  leg-pattern shape and evaluated in one stacked cumsum tensor pass.

Before any number is written the harness asserts byte identity three ways:
batched vs per-cell dispatch on the full workload, batched vs the
discrete-event loop (``fast_path=False``) on a subset, and a 2-way
shard split run through ``make_manifest``/``run_shard``/``merge_from``
against the unsharded records.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pr8.py [--out BENCH_PR8.json]
        [--cells 10000] [--rounds 3]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.geometry.cache import clear_caches
from repro.runner import execute_many
from repro.runner.campaign import _json_sanitize
from repro.runner.sharding import make_manifest, run_shard
from repro.runner.spec import spec_from_dict
from repro.sim.batchpath import batchpath_disabled
from repro.store import ResultStore, run_fingerprint

STRATEGIES = ["b-tctp", "sweep", "w-tctp", "b-tctp-cw"]
HORIZON = 50_000.0


def campaign_spec(num_cells: int, *, fast_path: bool = True):
    if num_cells % len(STRATEGIES):
        raise SystemExit(f"--cells must be a multiple of {len(STRATEGIES)}")
    return spec_from_dict({
        "kind": "campaign",
        "base": {
            "scenario": {
                "family": "uniform",
                "params": {"num_targets": 12, "num_mules": 3},
                "seed": 42,
            },
            "strategy": STRATEGIES[0],
            "sim": {
                "horizon": HORIZON,
                "track_energy": False,
                "fast_path": fast_path,
            },
            "seed": 1,
        },
        "grid": {"strategy": STRATEGIES},
        "replications": num_cells // len(STRATEGIES),
    })


def canonical(records) -> str:
    return json.dumps(_json_sanitize(records), sort_keys=True)


def timeit(fn, *, warmup: int = 1, rounds: int = 3) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "mean_s": statistics.mean(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def assert_shard_merge_parity(num_cells: int) -> bool:
    """2-shard split -> run -> merge; byte-compare against the unsharded run."""
    spec = campaign_spec(num_cells)
    unsharded = canonical(execute_many(spec.cells()))
    manifest = make_manifest(spec, 2)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        for index in range(2):
            run_shard(manifest, index, store=tmp_path / f"shard-{index}")
        merged = ResultStore(tmp_path / "merged")
        for index in range(2):
            merged.merge_from(tmp_path / f"shard-{index}")
        merged_records = [
            merged.get(run_fingerprint(cell)) for cell in spec.cells()
        ]
    if any(r is None for r in merged_records):
        raise SystemExit("shard merge lost at least one record")
    if canonical(merged_records) != unsharded:
        raise SystemExit("sharded+merged records diverged from the unsharded run")
    return True


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR8.json")
    parser.add_argument("--cells", type=int, default=10_000)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--event-loop-cells", type=int, default=16,
                        help="subset size for the discrete-event identity leg")
    args = parser.parse_args()

    spec = campaign_spec(args.cells)
    cells = spec.cells()

    # -- identity first: no speed number without byte equality ------------- #
    clear_caches()
    batched = execute_many(cells)
    clear_caches()
    with batchpath_disabled():
        per_cell = execute_many(cells)
    if canonical(batched) != canonical(per_cell):
        raise SystemExit("records diverged between batched and per-cell dispatch")

    event_spec = campaign_spec(
        args.event_loop_cells - args.event_loop_cells % len(STRATEGIES)
        or len(STRATEGIES),
        fast_path=False,
    )
    event_cells = event_spec.cells()
    subset = campaign_spec(len(event_cells)).cells()
    clear_caches()
    if canonical(execute_many(subset)) != canonical(execute_many(event_cells)):
        raise SystemExit("records diverged between batched and event-loop paths")

    shard_parity = assert_shard_merge_parity(len(STRATEGIES) * 6)

    # -- then the timings -------------------------------------------------- #
    def run_baseline():
        with batchpath_disabled():
            execute_many(cells)

    baseline = timeit(run_baseline, rounds=args.rounds)
    optimized = timeit(lambda: execute_many(cells), rounds=args.rounds)

    payload = {
        "benchmark": "batched fastpath tensor pass vs per-cell scalar dispatch",
        "workload": {
            "strategies": STRATEGIES,
            "num_cells": len(cells),
            "num_targets": 12,
            "num_mules": 3,
            "horizon": HORIZON,
            "scenario_seed": 42,
        },
        "baseline": {
            "description": "REPRO_BATCHPATH off: per-cell scalar fast path "
                           "(PR 3 dispatch model)",
            **baseline,
        },
        "optimized": {
            "description": "batched leg-pattern tensor pass (defaults)",
            **optimized,
        },
        "speedup_median": baseline["median_s"] / optimized["median_s"],
        "records_byte_identical": True,
        "event_loop_subset_byte_identical": True,
        "shard_merge_byte_identical": shard_parity,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "library_version": __version__,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"speedup (median): {payload['speedup_median']:.2f}x -> {args.out}")


if __name__ == "__main__":
    main()
