"""EXT-A3 benchmark — fleet-size / break-edge-policy interaction, measured vs predicted.

Times the ablation that quantifies where Figure 10's "Balancing-Length wins"
ordering holds (one mule per walk) and where mule phase offsets invert it, and
checks the analytic predictions track the simulation.
"""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.ablation_mules import run_ablation_mules


@pytest.mark.benchmark(group="ablations")
def test_ablation_mule_interference(benchmark):
    settings = ExperimentSettings.quick(replications=2, horizon=60_000.0,
                                        num_targets=12, num_mules=2)
    data = benchmark(run_ablation_mules, settings, mule_counts=(1, 2),
                     num_vips=1, vip_weight=2)

    detail = data["detail"]
    # Figure 10's ordering with one mule: balanced <= shortest (analytically).
    assert detail[1]["balanced"]["predicted"] <= detail[1]["shortest"]["predicted"] + 1e-6
    # Predictions and measurements agree on which policy is steadier in each cell.
    for n in (1, 2):
        predicted_winner = min(("shortest", "balanced"), key=lambda p: detail[n][p]["predicted"])
        measured_winner = min(("shortest", "balanced"), key=lambda p: detail[n][p]["measured"])
        assert predicted_winner == measured_winner
