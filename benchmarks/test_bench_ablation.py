"""Ablation benchmarks — EXT-A1 (location initialisation) and EXT-A2 (TSP heuristic).

EXT-A1 isolates the mechanism behind Figure 8's zero-SD bars: B-TCTP with the
start-point relocation disabled degenerates into CHB-like behaviour.  EXT-A2
quantifies how much the phase-1 circuit heuristic matters for the visiting
interval.
"""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.ablation_init import run_ablation_init
from repro.experiments.ablation_tsp import run_ablation_tsp


@pytest.mark.benchmark(group="ablations")
def test_ablation_location_initialization(benchmark, bench_settings):
    data = benchmark(run_ablation_init, bench_settings, mule_counts=(2, 4))

    for row in data["rows"]:
        _n, sd_with, sd_without, dcdt_with, dcdt_without = row
        assert sd_with == pytest.approx(0.0, abs=1e-6)
        assert sd_without > sd_with
        # the initialisation step does not change the circuit, so the mean DCDT matches
        assert dcdt_with == pytest.approx(dcdt_without, rel=0.05)


@pytest.mark.benchmark(group="ablations")
def test_ablation_tsp_heuristics(benchmark):
    settings = ExperimentSettings.quick(replications=2, horizon=15_000.0,
                                        num_targets=15, num_mules=2)
    data = benchmark(run_ablation_tsp, settings, target_counts=(15,), simulate=False)

    lengths = {label: length for _h, label, length, _d in data["rows"]}
    assert lengths["hull+2opt"] <= lengths["hull-insertion"] + 1e-6
    assert lengths["nn+2opt"] <= lengths["nearest-neighbor"] + 1e-6
    # the paper's convex-hull insertion is a solid heuristic: it should beat plain NN on average
    assert lengths["hull-insertion"] <= lengths["nearest-neighbor"] * 1.05
