"""Unit tests for repro.energy (Battery, EnergyModel, Equation 4)."""

import pytest

from repro.energy.battery import Battery
from repro.energy.model import EnergyModel, patrolling_rounds


class TestBattery:
    def test_starts_full_by_default(self):
        b = Battery(100.0)
        assert b.remaining == 100.0
        assert b.fraction == 1.0
        assert not b.depleted

    def test_partial_initial_charge(self):
        assert Battery(100.0, remaining=40.0).fraction == pytest.approx(0.4)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Battery(0.0)

    def test_invalid_remaining(self):
        with pytest.raises(ValueError):
            Battery(100.0, remaining=150.0)

    def test_drain(self):
        b = Battery(100.0)
        drained = b.drain(30.0)
        assert drained == 30.0
        assert b.remaining == 70.0
        assert b.total_drained == 30.0

    def test_drain_clamps_at_zero(self):
        b = Battery(100.0)
        drained = b.drain(250.0)
        assert drained == 100.0
        assert b.remaining == 0.0
        assert b.depleted

    def test_drain_negative_rejected(self):
        with pytest.raises(ValueError):
            Battery(10.0).drain(-1.0)

    def test_refill(self):
        b = Battery(100.0)
        b.drain(60.0)
        added = b.refill()
        assert added == pytest.approx(60.0)
        assert b.remaining == 100.0
        assert b.recharge_count == 1
        assert b.total_recharged == pytest.approx(60.0)

    def test_charge_partial(self):
        b = Battery(100.0)
        b.drain(50.0)
        assert b.charge(20.0) == 20.0
        assert b.remaining == 70.0

    def test_charge_clamps_at_capacity(self):
        b = Battery(100.0)
        b.drain(10.0)
        assert b.charge(500.0) == pytest.approx(10.0)
        assert b.remaining == 100.0

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            Battery(10.0).charge(-5.0)

    def test_copy_preserves_counters(self):
        b = Battery(100.0)
        b.drain(30.0)
        b.refill()
        c = b.copy()
        assert c.remaining == b.remaining
        assert c.recharge_count == 1
        c.drain(10.0)
        assert b.remaining == 100.0  # independent


class TestEnergyModel:
    def test_defaults_match_paper(self):
        m = EnergyModel()
        assert m.move_cost_per_meter == pytest.approx(8.267)
        assert m.collect_cost == pytest.approx(0.075)

    def test_movement_energy(self):
        assert EnergyModel(2.0, 0.1).movement_energy(50.0) == pytest.approx(100.0)

    def test_movement_energy_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().movement_energy(-1.0)

    def test_collection_energy(self):
        assert EnergyModel(2.0, 0.1).collection_energy(5) == pytest.approx(0.5)

    def test_collection_energy_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().collection_energy(-1)

    def test_round_energy(self):
        m = EnergyModel(2.0, 0.5)
        assert m.round_energy(100.0, 10) == pytest.approx(205.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(-1.0, 0.1)


class TestPatrollingRounds:
    def test_equation_4_basic(self):
        # |P| = 1000 m, h = 10 targets, paper constants
        m = EnergyModel()
        per_round = 1000 * 8.267 + 10 * 0.075
        assert patrolling_rounds(5 * per_round, 1000.0, 10, m) == 5

    def test_floor_behaviour(self):
        m = EnergyModel(1.0, 0.0)
        assert patrolling_rounds(99.9, 10.0, 0, m) == 9

    def test_zero_when_energy_below_one_round(self):
        m = EnergyModel(1.0, 0.0)
        assert patrolling_rounds(5.0, 10.0, 0, m) == 0

    def test_default_model_used_when_none(self):
        assert patrolling_rounds(8.267 * 100 + 0.075, 100.0, 1) == 1

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            patrolling_rounds(-1.0, 10.0, 1)

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            patrolling_rounds(100.0, 0.0, 0, EnergyModel(0.0, 0.0))

    def test_rounds_supported_method_delegates(self):
        m = EnergyModel(1.0, 1.0)
        assert m.rounds_supported(42.0, 10.0, 4) == 3
