"""Tests for the scenario registry, ScenarioSpec, and the family catalog."""

import json

import pytest

from repro.runner import Campaign, CampaignSpec, RunSpec, execute_run
from repro.scenarios import (
    ScenarioSpec,
    available_scenario_families,
    build_scenario,
    canonical_scenario_family,
    filter_scenario_kwargs,
    register_scenario,
    scenario_family_info,
    scenario_family_params,
    spec_from_scenario_config,
    validate_scenario_params,
)
from repro.sim.engine import SimulationConfig
from repro.workloads.generator import ScenarioConfig, generate_scenario

QUICK_SIM = SimulationConfig(horizon=6_000.0, track_energy=False)

RANDOMIZED_FAMILIES = (
    "uniform", "clustered", "paper-default", "corridor", "hotspot",
    "ring", "grid-jitter", "mixed-density",
)
DETERMINISTIC_FAMILIES = ("figure1", "single-vip", "grid")
NEW_FAMILIES = ("corridor", "hotspot", "ring", "grid-jitter", "mixed-density")


class TestRegistry:
    def test_catalog_complete(self):
        names = available_scenario_families()
        assert set(RANDOMIZED_FAMILIES) | set(DETERMINISTIC_FAMILIES) <= set(names)
        assert len(NEW_FAMILIES) >= 5

    def test_aliases_resolve(self):
        assert canonical_scenario_family("grid_jitter") == "grid-jitter"
        assert canonical_scenario_family("ANNULUS") == "ring"
        assert canonical_scenario_family("single_vip") == "single-vip"
        assert "grid_jitter" in available_scenario_families(include_aliases=True)
        assert "grid_jitter" not in available_scenario_families()

    def test_unknown_family_lists_available(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            canonical_scenario_family("voronoi")

    def test_declared_params_with_defaults_and_types(self):
        info = scenario_family_info("ring")
        assert info.description
        param = info.params["ring_radius"]
        assert param.default == 300.0
        assert not param.required
        assert param.kind == "float"
        assert "num_targets" in scenario_family_params("uniform")
        assert "num_clusters" in scenario_family_params("clustered")
        assert "num_clusters" not in scenario_family_params("uniform")

    def test_filter_scenario_kwargs(self):
        shared = {"num_targets": 8, "num_mules": 2, "bogus": 1}
        assert filter_scenario_kwargs("uniform", shared) == {"num_targets": 8,
                                                             "num_mules": 2}
        assert filter_scenario_kwargs("figure1", shared) == {"num_mules": 2}

    def test_undeclared_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            validate_scenario_params("uniform", {"num_tragets": 5})
        with pytest.raises(ValueError, match="does not accept"):
            build_scenario("ring", {"radius": 100.0})

    def test_decorator_registration(self, monkeypatch):
        from repro.scenarios import registry

        monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))
        monkeypatch.setattr(registry, "_ALIASES", dict(registry._ALIASES))

        @register_scenario("two-points", aliases=("pair",), description="two targets")
        def _two_points(*, seed: int = 0, spacing: float = 100.0):
            from repro.geometry.point import Point
            from repro.network.field import Field
            from repro.workloads.generator import assemble_scenario
            import numpy as np

            fld = Field(400.0, 400.0)
            pts = [Point(100.0, 200.0), Point(100.0 + spacing, 200.0)]
            return assemble_scenario(np.random.default_rng(seed), fld, pts, num_mules=1)

        assert "two-points" in available_scenario_families()
        assert scenario_family_params("pair") == {"spacing"}
        assert build_scenario("pair", {"spacing": 50.0}).num_targets == 2

    def test_duplicate_registration_rejected(self, monkeypatch):
        from repro.scenarios import registry

        monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))
        monkeypatch.setattr(registry, "_ALIASES", dict(registry._ALIASES))
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("uniform", lambda *, seed=0: None)

    def test_var_keyword_factory_rejected(self):
        with pytest.raises(TypeError, match="explicit keyword parameter set"):
            register_scenario("kitchen-sink", lambda **kw: None)


class TestFamilyCatalog:
    @pytest.mark.parametrize("family", RANDOMIZED_FAMILIES + DETERMINISTIC_FAMILIES)
    def test_same_seed_same_scenario(self, family):
        a = build_scenario(family, seed=11)
        b = build_scenario(family, seed=11)
        assert [t.position for t in a.targets] == [t.position for t in b.targets]
        assert [t.weight for t in a.targets] == [t.weight for t in b.targets]
        assert [m.position for m in a.mules] == [m.position for m in b.mules]

    @pytest.mark.parametrize("family", RANDOMIZED_FAMILIES)
    def test_different_seeds_differ(self, family):
        a = build_scenario(family, seed=1)
        b = build_scenario(family, seed=2)
        assert [t.position for t in a.targets] != [t.position for t in b.targets]

    @pytest.mark.parametrize("family", RANDOMIZED_FAMILIES + DETERMINISTIC_FAMILIES)
    def test_targets_inside_field(self, family):
        sc = build_scenario(family, seed=3)
        assert all(sc.field.contains(t.position) for t in sc.targets)

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_new_families_support_vips(self, family):
        sc = build_scenario(family, {"num_targets": 12, "num_vips": 3,
                                     "vip_weight": 4}, seed=5)
        vips = [t for t in sc.targets if t.is_vip]
        assert len(vips) == 3
        assert all(t.weight == 4 for t in vips)

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_new_families_support_heterogeneous_data_rates(self, family):
        sc = build_scenario(family, {"num_targets": 10, "data_rate": 2.0,
                                     "data_rate_jitter": 0.5}, seed=5)
        rates = [t.data_rate for t in sc.targets]
        assert len(set(rates)) > 1
        assert all(1.0 <= r <= 3.0 for r in rates)

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_new_families_support_battery_and_recharge(self, family):
        sc = build_scenario(family, {"num_targets": 6, "mule_battery": 9_000.0,
                                     "with_recharge_station": True}, seed=5)
        assert sc.recharge_station is not None
        assert all(m.battery is not None and m.battery.capacity == 9_000.0
                   for m in sc.mules)

    def test_corridor_segments_leave_gaps(self):
        sc = build_scenario("corridor", {"num_targets": 60, "num_segments": 2,
                                         "gap_fraction": 0.5,
                                         "corridor_width": 10.0}, seed=7)
        xs = sorted(t.position.x for t in sc.targets)
        largest_gap = max(b - a for a, b in zip(xs, xs[1:]))
        assert largest_gap > 100.0  # the inter-segment gap dwarfs within-segment spacing
        mid = 800.0 / 2.0
        assert all(abs(t.position.y - mid) <= 5.0 + 1e-9 for t in sc.targets)

    def test_ring_targets_on_annulus(self):
        sc = build_scenario("ring", {"num_targets": 40, "ring_radius": 250.0,
                                     "ring_width": 40.0}, seed=7)
        centre = sc.field.center
        from repro.geometry.point import distance

        radii = [distance(t.position, centre) for t in sc.targets]
        assert all(229.9 <= r <= 270.1 for r in radii)

    def test_mixed_density_core_share(self):
        sc = build_scenario("mixed-density", {"num_targets": 40, "core_fraction": 0.75,
                                              "core_radius": 100.0}, seed=7)
        from repro.geometry.point import distance

        in_core = sum(distance(t.position, sc.field.center) <= 100.0 + 1e-6
                      for t in sc.targets)
        assert in_core >= 30  # 0.75 * 40 core draws (fringe may add a few by chance)

    def test_legacy_generator_paths_byte_identical(self):
        for dist, extra in (("uniform", {}), ("clustered", {"num_clusters": 3})):
            cfg = ScenarioConfig(num_targets=14, num_mules=3, distribution=dist,
                                 num_vips=2, mule_placement="random", **extra)
            legacy = generate_scenario(cfg, seed=9)
            via_registry = spec_from_scenario_config(cfg).build(9)
            assert [t.position for t in legacy.targets] == \
                   [t.position for t in via_registry.targets]
            assert [t.weight for t in legacy.targets] == \
                   [t.weight for t in via_registry.targets]
            assert [m.position for m in legacy.mules] == \
                   [m.position for m in via_registry.mules]


class TestFamilyValidation:
    @pytest.mark.parametrize(
        "family, params",
        [
            ("corridor", {"num_segments": 0}),
            ("corridor", {"gap_fraction": 1.0}),
            ("corridor", {"corridor_width": -1.0}),
            ("hotspot", {"exponent": 1.0}),
            ("hotspot", {"num_hotspots": 0}),
            ("ring", {"ring_radius": -5.0}),
            ("ring", {"ring_width": 700.0}),
            ("grid-jitter", {"jitter": -1.0}),
            ("mixed-density", {"core_fraction": 1.5}),
            ("mixed-density", {"core_radius": 500.0}),
            ("grid", {"rows": 0}),
            ("uniform", {"num_targets": 0}),
            ("uniform", {"data_rate_jitter": 2.0}),
            ("clustered", {"num_clusters": 0}),
            ("clustered", {"cluster_radius": 400.0}),
        ],
    )
    def test_out_of_range_params_rejected_without_building(self, family, params):
        with pytest.raises(ValueError):
            validate_scenario_params(family, params)
        with pytest.raises(ValueError):
            ScenarioSpec(family, params).validate()


class TestScenarioSpec:
    def test_json_round_trip(self):
        spec = ScenarioSpec("hotspot", {"num_targets": 9, "exponent": 3.0}, seed=4)
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_positions_restored_as_tuples(self):
        spec = ScenarioSpec("uniform", {"sink_position": (10.0, 20.0)})
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.params["sink_position"] == (10.0, 20.0)
        assert restored == spec

    def test_sim_params_round_trip(self):
        from repro.network.scenario import SimulationParameters

        spec = ScenarioSpec("uniform", {"params": SimulationParameters(mule_velocity=3.0)})
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.params["params"].mule_velocity == 3.0
        assert restored == spec

    def test_declared_params_readable_as_attributes(self):
        spec = ScenarioSpec("ring", {"num_targets": 7})
        assert spec.num_targets == 7
        assert spec.ring_radius == 300.0  # declared default
        with pytest.raises(AttributeError):
            spec.nonexistent_knob

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario spec field"):
            ScenarioSpec.from_dict({"family": "ring", "parms": {}})

    def test_pinned_seed_wins_over_run_seed(self):
        pinned = ScenarioSpec("uniform", {"num_targets": 6}, seed=42)
        a = pinned.build(1)
        b = pinned.build(2)
        assert [t.position for t in a.targets] == [t.position for t in b.targets]


class TestRunnerIntegration:
    def quick_run(self, family, params=None, **overrides):
        defaults = dict(
            strategy="b-tctp",
            scenario=ScenarioSpec(family, dict(params or {})),
            sim=QUICK_SIM,
            seed=3,
        )
        defaults.update(overrides)
        return RunSpec(**defaults)

    def test_family_axis_sweeps_all_registered_families(self):
        families = available_scenario_families()
        spec = CampaignSpec(
            base=self.quick_run("uniform", {"num_targets": 6, "num_mules": 2}),
            grid={"scenario.family": families},
        )
        cells = spec.cells()
        assert [c.scenario.family for c in cells] == families
        # shared params are filtered per family: figure1 takes no num_targets
        by_family = {c.scenario.family: c for c in cells}
        assert "num_targets" not in by_family["figure1"].scenario.params
        assert by_family["ring"].scenario.params["num_targets"] == 6

    def test_family_axis_campaign_serial_equals_parallel(self):
        families = available_scenario_families()
        spec = CampaignSpec(
            base=self.quick_run("uniform", {"num_targets": 6, "num_mules": 2}),
            grid={"scenario.family": families},
        )
        serial = Campaign(spec).run()
        parallel = Campaign(spec, max_workers=2).run()
        assert json.dumps(serial.records) == json.dumps(parallel.records)
        assert len(serial) == len(families)

    def test_family_param_sweepable_as_axis(self):
        spec = CampaignSpec(
            base=self.quick_run("ring", {"num_targets": 6}),
            grid={"scenario.ring_radius": [200.0, 300.0]},
        )
        cells = spec.cells()
        assert [c.scenario.params["ring_radius"] for c in cells] == [200.0, 300.0]
        assert [c.labels["scenario.ring_radius"] for c in cells] == [200.0, 300.0]

    def test_battery_knob_shared_across_all_families(self):
        """Every family declares the battery knob as 'mule_battery', so a
        cross-family battery sweep reaches hand-crafted layouts too."""
        spec = CampaignSpec(
            base=self.quick_run("uniform", {"num_targets": 6, "num_mules": 2}),
            grid={"scenario.family": ["uniform", "figure1", "grid"],
                  "mule_battery": [500.0]},
        )
        for cell in spec.cells():
            assert cell.scenario.params["mule_battery"] == 500.0, cell.scenario.family
            scenario = cell.scenario.build(cell.seed)
            assert all(m.battery is not None and m.battery.capacity == 500.0
                       for m in scenario.mules), cell.scenario.family

    def test_bare_family_param_resolves_to_scenario(self):
        spec = CampaignSpec(
            base=self.quick_run("ring", {"num_targets": 6}),
            grid={"ring_radius": [150.0, 250.0]},
        )
        assert [c.scenario.params["ring_radius"] for c in spec.cells()] == [150.0, 250.0]

    def test_unknown_family_rejected_before_any_simulation(self):
        spec = CampaignSpec(base=self.quick_run("uniform"),
                            grid={"scenario.family": ["uniform", "voronoi"]})
        with pytest.raises(ValueError, match="unknown scenario family"):
            spec.cells()

    def test_typoed_scenario_param_axis_rejected(self):
        spec = CampaignSpec(base=self.quick_run("uniform"),
                            grid={"scenario.num_tragets": [5, 10]})
        with pytest.raises(ValueError, match="num_tragets"):
            spec.cells()

    def test_typoed_base_scenario_param_rejected(self):
        spec = CampaignSpec(base=self.quick_run("uniform", {"num_tragets": 5}),
                            replications=2)
        with pytest.raises(ValueError, match="num_tragets"):
            spec.cells()

    def test_out_of_range_scenario_param_rejected_before_run(self):
        spec = CampaignSpec(
            base=self.quick_run("clustered", {"cluster_radius": 500.0}),
            replications=2,
        )
        with pytest.raises(ValueError, match="cluster_radius"):
            spec.cells()

    def test_legacy_distribution_axis_still_sweeps_family(self):
        spec = CampaignSpec(
            base=self.quick_run("uniform", {"num_targets": 6, "num_mules": 2}),
            grid={"distribution": ["uniform", "clustered"]},
        )
        assert [c.scenario.family for c in spec.cells()] == ["uniform", "clustered"]

    def test_run_spec_json_round_trip_with_family(self):
        spec = self.quick_run("grid-jitter", {"num_targets": 7, "jitter": 10.0})
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.scenario.family == "grid-jitter"

    def test_legacy_run_spec_json_still_loads(self):
        legacy = {
            "kind": "run",
            "strategy": "chb",
            "scenario": {"num_targets": 6, "num_mules": 2, "distribution": "clustered",
                         "mule_placement": "random"},
            "seed": 5,
        }
        spec = RunSpec.from_dict(legacy)
        assert spec.scenario.family == "clustered"
        assert spec.scenario.params["num_targets"] == 6
        record = execute_run(RunSpec.from_dict({**legacy, "sim": {
            "horizon": 6000.0, "track_energy": False}}))
        assert record["num_targets"] == 6

    def test_execute_run_on_new_family(self):
        record = execute_run(self.quick_run("corridor", {"num_targets": 8,
                                                         "num_mules": 2}))
        assert record["num_targets"] == 8
        assert record["average_dcdt"] > 0

    def test_run_spec_validate_rejects_bad_scenario(self):
        with pytest.raises(ValueError, match="does not accept"):
            self.quick_run("ring", {"radius": 10}).validate()
        assert self.quick_run("ring", {"ring_radius": 200.0}).validate()
