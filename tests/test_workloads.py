"""Unit tests for repro.workloads (scenario generators)."""

import pytest

from repro.network.field import connected_components_by_range
from repro.workloads.generator import (
    ScenarioConfig,
    clustered_scenario,
    generate_scenario,
    paper_default_scenario,
    uniform_scenario,
)
from repro.workloads.scenarios import figure1_scenario, grid_scenario, single_vip_scenario


class TestScenarioConfig:
    def test_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.num_targets == 20
        assert cfg.num_mules == 4
        assert cfg.field_size == 800.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_targets": 0},
            {"num_mules": 0},
            {"distribution": "hexagonal"},
            {"num_vips": -1},
            {"num_vips": 99, "num_targets": 5},
            {"vip_weight": 0},
            {"mule_placement": "moon"},
            {"num_clusters": 0},
            {"cluster_radius": 0.0},
            {"cluster_radius": -5.0},
            {"data_rate": -1.0},
            {"data_rate_jitter": -0.1},
            {"data_rate_jitter": 1.5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_oversized_cluster_radius_rejected_with_clear_error(self):
        """A radius that would push cluster centres outside the field must not
        silently generate out-of-bounds coordinates."""
        with pytest.raises(ValueError, match="cluster_radius"):
            ScenarioConfig(distribution="clustered", cluster_radius=395.0)
        with pytest.raises(ValueError, match="cluster_radius"):
            ScenarioConfig(distribution="clustered", cluster_radius=120.0,
                           field_size=250.0)
        # the same radius is fine on a large enough field
        ScenarioConfig(distribution="clustered", cluster_radius=120.0, field_size=800.0)
        # and irrelevant for the uniform distribution, which ignores clusters
        ScenarioConfig(distribution="uniform", cluster_radius=395.0)


class TestGenerateScenario:
    def test_counts_respected(self):
        cfg = ScenarioConfig(num_targets=17, num_mules=5)
        sc = generate_scenario(cfg, seed=1)
        assert sc.num_targets == 17
        assert sc.num_mules == 5

    def test_targets_inside_field(self):
        sc = generate_scenario(ScenarioConfig(num_targets=50), seed=2)
        assert all(sc.field.contains(t.position) for t in sc.targets)

    def test_deterministic_for_seed(self):
        cfg = ScenarioConfig(num_targets=10, num_vips=2)
        a = generate_scenario(cfg, seed=42)
        b = generate_scenario(cfg, seed=42)
        assert [t.position for t in a.targets] == [t.position for t in b.targets]
        assert [t.weight for t in a.targets] == [t.weight for t in b.targets]

    def test_different_seeds_differ(self):
        cfg = ScenarioConfig(num_targets=10)
        a = generate_scenario(cfg, seed=1)
        b = generate_scenario(cfg, seed=2)
        assert [t.position for t in a.targets] != [t.position for t in b.targets]

    def test_vip_count_and_weight(self):
        cfg = ScenarioConfig(num_targets=20, num_vips=4, vip_weight=3)
        sc = generate_scenario(cfg, seed=3)
        vips = [t for t in sc.targets if t.is_vip]
        assert len(vips) == 4
        assert all(t.weight == 3 for t in vips)

    def test_recharge_station_created_on_request(self):
        cfg = ScenarioConfig(with_recharge_station=True)
        sc = generate_scenario(cfg, seed=1)
        assert sc.recharge_station is not None

    def test_batteries_attached_on_request(self):
        cfg = ScenarioConfig(mule_battery=123_456.0)
        sc = generate_scenario(cfg, seed=1)
        assert all(m.battery is not None and m.battery.capacity == 123_456.0 for m in sc.mules)

    def test_mule_placement_sink(self):
        sc = generate_scenario(ScenarioConfig(mule_placement="sink"), seed=1)
        assert all(m.position == sc.sink.position for m in sc.mules)

    def test_mule_placement_random_inside_field(self):
        sc = generate_scenario(ScenarioConfig(mule_placement="random"), seed=1)
        assert all(sc.field.contains(m.position) for m in sc.mules)

    def test_clustered_distribution_builds_disconnected_components(self):
        cfg = ScenarioConfig(num_targets=24, distribution="clustered", num_clusters=4)
        sc = generate_scenario(cfg, seed=4)
        comps = connected_components_by_range(
            [t.position for t in sc.targets], sc.params.communication_range
        )
        assert len(comps) >= 2

    def test_simulation_parameters_match_paper(self):
        sc = generate_scenario(ScenarioConfig(), seed=0)
        assert sc.params.mule_velocity == 2.0
        assert sc.params.move_cost_per_meter == pytest.approx(8.267)

    def test_data_rate_jitter_draws_heterogeneous_rates(self):
        cfg = ScenarioConfig(num_targets=12, data_rate=2.0, data_rate_jitter=0.25)
        sc = generate_scenario(cfg, seed=5)
        rates = [t.data_rate for t in sc.targets]
        assert len(set(rates)) > 1
        assert all(1.5 <= r <= 2.5 for r in rates)

    def test_zero_jitter_keeps_legacy_rng_stream(self):
        """jitter=0 must not consume RNG draws — replay the legacy stream by hand."""
        import numpy as np

        from repro.network.field import Field

        cfg = ScenarioConfig(num_targets=10, num_vips=2, mule_placement="random")
        sc = generate_scenario(cfg, seed=8)

        # The pre-jitter generator consumed exactly: target positions, one VIP
        # choice, then mule positions.  Any extra draw in between (e.g. a
        # jitter draw taken even at jitter=0) would shift the mule positions.
        rng = np.random.default_rng(8)
        fld = Field(800.0, 800.0)
        expected_targets = fld.sample_uniform(rng, 10)
        rng.choice(10, size=2, replace=False)  # the VIP selection draw
        expected_mules = fld.sample_uniform(rng, 4)
        assert [t.position for t in sc.targets] == expected_targets
        assert [m.position for m in sc.mules] == expected_mules


class TestShortcuts:
    def test_uniform_scenario(self):
        sc = uniform_scenario(num_targets=8, num_mules=2, seed=1)
        assert sc.num_targets == 8 and sc.num_mules == 2

    def test_clustered_scenario(self):
        sc = clustered_scenario(num_targets=12, num_mules=3, num_clusters=3, seed=1)
        assert sc.num_targets == 12

    def test_paper_default_scenario(self):
        sc = paper_default_scenario(seed=0)
        assert sc.num_targets == 10 and sc.num_mules == 4

    def test_uniform_with_vips(self):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=1, num_vips=2, vip_weight=4)
        assert sum(1 for t in sc.targets if t.weight == 4) == 2


class TestHandCraftedScenarios:
    def test_figure1(self):
        sc = figure1_scenario(num_mules=4)
        assert sc.num_targets == 10
        assert sc.num_mules == 4
        assert all(sc.field.contains(t.position) for t in sc.targets)

    def test_figure1_with_recharge_and_battery(self):
        sc = figure1_scenario(num_mules=2, battery=1000.0, with_recharge_station=True)
        assert sc.recharge_station is not None
        assert sc.mules[0].battery.capacity == 1000.0

    def test_single_vip(self):
        sc = single_vip_scenario(vip_weight=3)
        vips = [t for t in sc.targets if t.is_vip]
        assert len(vips) == 1
        assert vips[0].id == "g4"
        assert vips[0].weight == 3

    def test_grid(self):
        sc = grid_scenario(rows=3, cols=4)
        assert sc.num_targets == 12

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_scenario(rows=0, cols=4)
