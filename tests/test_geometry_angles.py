"""Unit tests for repro.geometry.angles (headings and CCW included angles)."""

import math

import pytest

from repro.geometry.angles import (
    ccw_angle,
    heading,
    included_angle,
    normalize_angle,
    orientation,
    turn_direction,
)
from repro.geometry.point import Point


class TestNormalizeAngle:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            (0.0, 0.0),
            (math.pi, math.pi),
            (2 * math.pi, 0.0),
            (-math.pi / 2, 3 * math.pi / 2),
            (5 * math.pi, math.pi),
            (-4 * math.pi, 0.0),
        ],
    )
    def test_values(self, raw, expected):
        assert normalize_angle(raw) == pytest.approx(expected)

    def test_result_always_in_range(self):
        for k in range(-20, 20):
            theta = normalize_angle(0.37 * k)
            assert 0.0 <= theta < 2 * math.pi


class TestHeading:
    def test_east(self):
        assert heading(Point(0, 0), Point(5, 0)) == pytest.approx(0.0)

    def test_north(self):
        assert heading(Point(0, 0), Point(0, 5)) == pytest.approx(math.pi / 2)

    def test_west(self):
        assert heading(Point(0, 0), Point(-5, 0)) == pytest.approx(math.pi)

    def test_south(self):
        assert heading(Point(0, 0), Point(0, -5)) == pytest.approx(3 * math.pi / 2)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            heading(Point(1, 1), Point(1, 1))


class TestCcwAngle:
    def test_quarter_turn(self):
        assert ccw_angle(0.0, math.pi / 2) == pytest.approx(math.pi / 2)

    def test_wraps_negative_difference(self):
        assert ccw_angle(math.pi / 2, 0.0) == pytest.approx(3 * math.pi / 2)

    def test_zero(self):
        assert ccw_angle(1.0, 1.0) == pytest.approx(0.0)


class TestIncludedAngle:
    def test_right_angle(self):
        # incoming edge points east (towards from_point), outgoing points north
        angle = included_angle(Point(0, 0), Point(1, 0), Point(0, 1))
        assert angle == pytest.approx(math.pi / 2)

    def test_reflex_measured_ccw(self):
        # outgoing south of the reference: CCW rotation is 3*pi/2
        angle = included_angle(Point(0, 0), Point(1, 0), Point(0, -1))
        assert angle == pytest.approx(3 * math.pi / 2)

    def test_straight_back(self):
        angle = included_angle(Point(0, 0), Point(1, 0), Point(-1, 0))
        assert angle == pytest.approx(math.pi)

    def test_same_direction_is_zero(self):
        angle = included_angle(Point(0, 0), Point(1, 0), Point(2, 0))
        assert angle == pytest.approx(0.0)


class TestOrientation:
    def test_ccw(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_cw(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, -1)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_scale_invariant_near_collinear(self):
        # huge coordinates, still clearly CCW
        assert orientation(Point(0, 0), Point(1e9, 0), Point(1e9, 1e3)) == 1


class TestTurnDirection:
    def test_left(self):
        assert turn_direction(Point(0, 0), Point(1, 0), Point(1, 1)) == "left"

    def test_right(self):
        assert turn_direction(Point(0, 0), Point(1, 0), Point(1, -1)) == "right"

    def test_straight(self):
        assert turn_direction(Point(0, 0), Point(1, 0), Point(2, 0)) == "straight"
