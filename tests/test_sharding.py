"""Shard/merge golden tests: split campaigns must reassemble byte-identically.

The contract under test (``repro.runner.sharding`` + ``ResultStore.merge_from``
+ the ``shard`` / ``store merge`` CLI): a campaign split into N shards, run
independently and merged back, produces exactly the records — and exactly the
``report`` output — of the unsharded run.  Merging is idempotent, duplicates
are benign, and a fingerprint collision with different content aborts the
merge without touching the destination.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner import execute_many
from repro.runner.campaign import _json_sanitize
from repro.runner.sharding import (
    load_manifest,
    make_manifest,
    run_shard,
    shard_cells,
    write_manifest,
)
from repro.runner.spec import spec_from_dict
from repro.store import MergeConflictError, ResultStore, run_fingerprint

CAMPAIGN = {
    "kind": "campaign",
    "base": {
        "scenario": {"family": "uniform",
                     "params": {"num_targets": 6, "num_mules": 2}},
        "strategy": "b-tctp",
        "sim": {"horizon": 5_000.0, "track_energy": False},
        "seed": 0,
    },
    "grid": {"strategy": ["b-tctp", "sweep"]},
    "replications": 3,
}


def campaign_spec():
    return spec_from_dict(json.loads(json.dumps(CAMPAIGN)))


def canonical(records) -> str:
    return json.dumps(_json_sanitize(records), sort_keys=True)


class TestManifest:
    def test_round_robin_split_is_disjoint_and_complete(self):
        manifest = make_manifest(campaign_spec(), 3)
        assert manifest["num_cells"] == 6
        assert [s["cells"] for s in manifest["shards"]] == [
            [0, 3], [1, 4], [2, 5],
        ]

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(campaign_spec(), 2, path)
        manifest = load_manifest(path)
        assert manifest["num_shards"] == 2
        assert len(shard_cells(manifest, 0)) == 3

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            make_manifest(campaign_spec(), 0)
        with pytest.raises(ValueError, match="empty"):
            make_manifest(campaign_spec(), 7)

    @pytest.mark.parametrize("tamper,message", [
        (lambda m: m.update(format="something-else"), "not a shard manifest"),
        (lambda m: m.pop("shards"), "missing"),
        (lambda m: m.update(num_cells=5), "expands to"),
        (lambda m: m["shards"][0]["cells"].append(99), "outside"),
        (lambda m: m["shards"][0]["cells"].append(1), "two shards"),
        (lambda m: m["shards"][0]["cells"].remove(0), "first missing"),
        (lambda m: m["shards"][0].update(index=1), "carries index"),
    ], ids=["format", "missing-key", "cell-count", "out-of-range",
            "duplicate", "incomplete", "index-mismatch"])
    def test_tampered_manifests_rejected(self, tamper, message):
        manifest = make_manifest(campaign_spec(), 2)
        tamper(manifest)
        with pytest.raises(ValueError, match=message):
            load_manifest(manifest)

    def test_shard_index_out_of_range(self):
        manifest = make_manifest(campaign_spec(), 2)
        with pytest.raises(ValueError, match="out of range"):
            shard_cells(manifest, 2)


class TestShardMergeGolden:
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_merged_records_byte_identical_to_unsharded(self, tmp_path, num_shards):
        spec = campaign_spec()
        unsharded = execute_many(spec.cells())
        manifest = make_manifest(spec, num_shards)
        for index in range(num_shards):
            result = run_shard(manifest, index,
                               store=tmp_path / f"shard-{index}")
            assert result.metadata["shard"] == {
                "index": index, "num_shards": num_shards,
            }
        merged = ResultStore(tmp_path / "merged")
        counts = {"merged": 0, "duplicates": 0}
        for index in range(num_shards):
            got = merged.merge_from(tmp_path / f"shard-{index}")
            counts["merged"] += got["merged"]
            counts["duplicates"] += got["duplicates"]
        assert counts == {"merged": 6, "duplicates": 0}
        merged_records = [merged.get(run_fingerprint(c)) for c in spec.cells()]
        assert canonical(merged_records) == canonical(unsharded)

    def test_merge_is_idempotent(self, tmp_path):
        spec = campaign_spec()
        manifest = make_manifest(spec, 2)
        for index in range(2):
            run_shard(manifest, index, store=tmp_path / f"shard-{index}")
        merged = ResultStore(tmp_path / "merged")
        for index in range(2):
            merged.merge_from(tmp_path / f"shard-{index}")
        again = merged.merge_from(tmp_path / "shard-0")
        assert again == {"merged": 0, "duplicates": 3}

    def test_report_output_matches_unsharded_store(self, tmp_path, capsys):
        spec = campaign_spec()
        whole = run_shard(make_manifest(spec, 1), 0, store=tmp_path / "whole")
        assert len(whole.records) == 6
        manifest = make_manifest(spec, 2)
        for index in range(2):
            run_shard(manifest, index, store=tmp_path / f"shard-{index}")
        merged = ResultStore(tmp_path / "merged")
        for index in range(2):
            merged.merge_from(tmp_path / f"shard-{index}")

        assert main(["report", "--dir", str(tmp_path / "whole"), "--json"]) == 0
        unsharded_report = json.loads(capsys.readouterr().out)
        assert main(["report", "--dir", str(tmp_path / "merged"), "--json"]) == 0
        merged_report = json.loads(capsys.readouterr().out)
        assert merged_report == unsharded_report

    def test_conflicting_fingerprint_aborts_without_writes(self, tmp_path):
        spec = campaign_spec()
        manifest = make_manifest(spec, 2)
        for index in range(2):
            run_shard(manifest, index, store=tmp_path / f"shard-{index}")
        merged = ResultStore(tmp_path / "merged")
        merged.merge_from(tmp_path / "shard-0")
        before_entries = merged.stats()["entries"]

        # Corrupt one record in shard-1 so a fingerprint seen by shard-0's
        # campaign... is *not* shared; instead collide on shard-0's first
        # fingerprint with different content.
        victim = ResultStore(tmp_path / "shard-1")
        fp = run_fingerprint(shard_cells(manifest, 0)[0])
        record = dict(merged.get(fp))
        record["average_dcdt"] = record["average_dcdt"] + 1.0
        victim.put(fp, record)

        with pytest.raises(MergeConflictError) as excinfo:
            merged.merge_from(tmp_path / "shard-1")
        assert excinfo.value.fingerprint == fp
        # Phase-1 vetting means nothing was copied before the abort.
        assert merged.stats()["entries"] == before_entries
        assert merged.get(fp)["average_dcdt"] != record["average_dcdt"]


class TestShardCli:
    def _write_spec(self, tmp_path):
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(json.dumps(CAMPAIGN))
        return str(spec_path)

    def test_full_cli_workflow_matches_direct_run(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        manifest_path = str(tmp_path / "manifest.json")
        assert main(["shard", "create", spec_path, "--num-shards", "2",
                     "-o", manifest_path]) == 0
        capsys.readouterr()
        for index in range(2):
            assert main(["shard", "run", manifest_path, "--index", str(index),
                         "--store", str(tmp_path / f"shard-{index}"),
                         "--json"]) == 0
            capsys.readouterr()
        assert main(["store", "merge", "--dir", str(tmp_path / "merged"),
                     "--from-dir", str(tmp_path / "shard-0"),
                     str(tmp_path / "shard-1"), "--json"]) == 0
        out = capsys.readouterr().out  # per-source progress lines, then JSON
        payload = json.loads(out[out.index("{"):])
        assert payload["merged"] == 6 and payload["duplicates"] == 0

        spec = campaign_spec()
        merged = ResultStore(tmp_path / "merged")
        merged_records = [merged.get(run_fingerprint(c)) for c in spec.cells()]
        assert canonical(merged_records) == canonical(execute_many(spec.cells()))

    def test_create_requires_num_shards(self, tmp_path, capsys):
        assert main(["shard", "create", self._write_spec(tmp_path)]) == 2
        assert "--num-shards" in capsys.readouterr().err

    def test_run_requires_valid_index(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        manifest_path = str(tmp_path / "manifest.json")
        assert main(["shard", "create", spec_path, "--num-shards", "2",
                     "-o", manifest_path]) == 0
        capsys.readouterr()
        assert main(["shard", "run", manifest_path]) == 2
        assert "--index" in capsys.readouterr().err
        assert main(["shard", "run", manifest_path, "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_merge_requires_sources(self, capsys, tmp_path):
        assert main(["store", "merge", "--dir", str(tmp_path / "m")]) == 2
        assert "--from-dir" in capsys.readouterr().err
