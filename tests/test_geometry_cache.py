"""Tests for the content-addressed geometry/tour/scenario caches.

Covers the PR-3 acceptance criteria: cached distance matrices match the
scalar ``geometry.point`` path exactly, caches hit across replications and
strategies, and campaign records are byte-identical with caching on or off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.geometry.cache import (
    ContentCache,
    cache_enabled,
    cache_stats,
    cached_distance_matrix,
    cached_polyline_length,
    caching_disabled,
    clear_caches,
    configure,
    points_fingerprint,
    scenario_fingerprint,
)
from repro.geometry.point import Point, distance, distance_matrix, total_length
from repro.geometry.polyline import Polyline
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.runner.campaign import build_cell_scenario
from repro.scenarios import ScenarioSpec
from repro.sim.engine import SimulationConfig


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    configure(enabled=True)
    yield
    clear_caches()
    configure(enabled=True)


def _points(seed: int = 0, n: int = 9) -> list[Point]:
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 500, size=(n, 2))]


# --------------------------------------------------------------------------- #
# Distance matrix
# --------------------------------------------------------------------------- #

class TestCachedDistanceMatrix:
    def test_matches_scalar_point_distance(self):
        """Every matrix entry equals the scalar geometry.point path exactly."""
        pts = _points()
        mat = cached_distance_matrix(pts)
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                assert mat[i, j] == pytest.approx(distance(a, b), abs=0.0, rel=1e-15)
        # and it is bit-identical to the uncached vectorised routine
        assert np.array_equal(mat, distance_matrix(pts))

    def test_second_call_hits(self):
        pts = _points()
        first = cached_distance_matrix(pts)
        second = cached_distance_matrix([p.as_tuple() for p in pts])  # same content
        assert second is first
        assert cache_stats()["distance_matrix"]["hits"] == 1

    def test_entries_are_read_only(self):
        mat = cached_distance_matrix(_points())
        with pytest.raises(ValueError):
            mat[0, 0] = 1.0

    def test_different_content_misses(self):
        cached_distance_matrix(_points(seed=0))
        cached_distance_matrix(_points(seed=1))
        stats = cache_stats()["distance_matrix"]
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_empty_input(self):
        assert cached_distance_matrix([]).shape == (0, 0)


class TestCachedPolylineLength:
    @pytest.mark.parametrize("closed", [False, True])
    def test_matches_polyline_length_bitwise(self, closed):
        pts = _points()
        assert cached_polyline_length(pts, closed=closed) == Polyline(pts, closed=closed).length

    @pytest.mark.parametrize("closed", [False, True])
    def test_close_to_scalar_total_length(self, closed):
        pts = _points()
        assert cached_polyline_length(pts, closed=closed) == pytest.approx(
            total_length(pts, closed=closed), rel=1e-12
        )

    def test_open_and_closed_are_distinct_keys(self):
        pts = _points()
        assert cached_polyline_length(pts, closed=True) != cached_polyline_length(pts)
        assert cache_stats()["polyline_length"]["misses"] == 2

    def test_tour_length_serves_from_cache(self):
        from repro.graphs.tour import Tour

        pts = _points()
        first = Tour.from_points(pts)
        second = Tour.from_points(pts)
        assert first.length() == Polyline(pts, closed=True).length
        assert second.length() == first.length()
        assert cache_stats()["polyline_length"]["hits"] >= 1


# --------------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------------- #

class TestFingerprints:
    def test_points_fingerprint_is_content_based(self):
        pts = _points()
        as_tuples = [p.as_tuple() for p in pts]
        assert points_fingerprint(pts) == points_fingerprint(as_tuples)
        assert points_fingerprint(pts) != points_fingerprint(list(reversed(pts)))

    def test_scenario_fingerprint_stable_across_rebuilds(self):
        spec = ScenarioSpec("uniform", {"num_targets": 10, "num_mules": 3})
        assert scenario_fingerprint(spec.build(4)) == scenario_fingerprint(spec.build(4))

    def test_scenario_fingerprint_changes_with_seed_and_params(self):
        spec = ScenarioSpec("uniform", {"num_targets": 10, "num_mules": 3})
        base = scenario_fingerprint(spec.build(4))
        assert scenario_fingerprint(spec.build(5)) != base
        bigger = ScenarioSpec("uniform", {"num_targets": 11, "num_mules": 3})
        assert scenario_fingerprint(bigger.build(4)) != base

    def test_fresh_copy_shares_fingerprint(self):
        scenario = ScenarioSpec("clustered", {"num_targets": 12}).build(2)
        assert scenario_fingerprint(scenario.fresh_copy()) == scenario_fingerprint(scenario)


# --------------------------------------------------------------------------- #
# The cache registry / switch
# --------------------------------------------------------------------------- #

class TestCacheControls:
    def test_disabled_context(self):
        assert cache_enabled()
        with caching_disabled():
            assert not cache_enabled()
            pts = _points()
            assert cached_distance_matrix(pts) is not cached_distance_matrix(pts)
        assert cache_enabled()

    def test_clear_resets_stats(self):
        pts = _points()
        cached_distance_matrix(pts)
        cached_distance_matrix(pts)
        clear_caches()
        stats = cache_stats()["distance_matrix"]
        assert stats == {"size": 0, "maxsize": 128, "hits": 0, "misses": 0,
                         "evictions": 0}

    def test_lru_eviction(self):
        cache = ContentCache("test_lru_eviction", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_duplicate_name_rejected(self):
        ContentCache("test_duplicate_name", maxsize=2)
        with pytest.raises(ValueError, match="already registered"):
            ContentCache("test_duplicate_name", maxsize=2)


# --------------------------------------------------------------------------- #
# Tour memoization
# --------------------------------------------------------------------------- #

class TestTourMemoization:
    def test_same_content_shares_one_tour(self):
        scenario = ScenarioSpec("uniform", {"num_targets": 12, "num_mules": 3}).build(1)
        coords = scenario.patrol_points()
        first = build_hamiltonian_circuit(coords, start=scenario.sink.id)
        second = build_hamiltonian_circuit(dict(coords), start=scenario.sink.id)
        assert second is first
        assert cache_stats()["hamiltonian_tour"]["hits"] == 1

    def test_options_are_part_of_the_key(self):
        coords = ScenarioSpec("uniform", {"num_targets": 10}).build(1).patrol_points()
        plain = build_hamiltonian_circuit(coords)
        improved = build_hamiltonian_circuit(coords, improve=True)
        nn = build_hamiltonian_circuit(coords, method="nearest-neighbor")
        assert improved is not plain and nn is not plain

    def test_disabled_cache_rebuilds_identically(self):
        coords = ScenarioSpec("uniform", {"num_targets": 10}).build(1).patrol_points()
        cached = build_hamiltonian_circuit(coords)
        with caching_disabled():
            rebuilt = build_hamiltonian_circuit(coords)
        assert rebuilt is not cached
        assert rebuilt == cached  # structural equality: identical circuit

    def test_unknown_method_still_raises(self):
        coords = {"a": Point(0, 0), "b": Point(1, 1)}
        with pytest.raises(ValueError, match="unknown tour construction method"):
            build_hamiltonian_circuit(coords, method="nope")


# --------------------------------------------------------------------------- #
# Campaign-level scenario reuse
# --------------------------------------------------------------------------- #

def _campaign_spec(replications: int = 3) -> CampaignSpec:
    return CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 10, "num_mules": 3}),
            sim=SimulationConfig(horizon=12_000.0, track_energy=False),
            seed=1,
        ),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=replications,
    )


class TestScenarioReuse:
    def test_cells_sharing_seed_share_a_prototype(self):
        cells = _campaign_spec().cells()
        hits_before = cache_stats()["scenario_prototype"]["hits"]
        scenarios = [build_cell_scenario(c) for c in cells]
        hits_after = cache_stats()["scenario_prototype"]["hits"]
        # 6 cells over 3 distinct seeds: 3 misses, 3 hits
        assert hits_after - hits_before == 3
        # every cell still gets an independent copy
        assert len({id(s) for s in scenarios}) == len(scenarios)

    def test_copies_have_identical_content(self):
        cell = _campaign_spec().cells()[0]
        a = build_cell_scenario(cell)
        b = build_cell_scenario(cell)
        assert scenario_fingerprint(a) == scenario_fingerprint(b)
        assert a.mules[0] is not b.mules[0]  # mutable state is never shared

    def test_pinned_scenario_seed_reuses_across_replications(self):
        spec = CampaignSpec(
            base=RunSpec(
                strategy="b-tctp",
                scenario=ScenarioSpec("uniform", {"num_targets": 8}, seed=42),
                sim=SimulationConfig(horizon=8_000.0, track_energy=False),
            ),
            replications=4,
        )
        for cell in spec.cells():
            build_cell_scenario(cell)
        stats = cache_stats()["scenario_prototype"]
        assert stats["misses"] == 1 and stats["hits"] == 3

    def test_campaign_records_byte_identical_with_and_without_caching(self):
        spec = _campaign_spec()
        cached = Campaign(spec).run().records
        clear_caches()
        with caching_disabled():
            uncached = Campaign(spec).run().records
        assert json.dumps(cached, sort_keys=True) == json.dumps(uncached, sort_keys=True)

    def test_cache_hits_during_campaign_execution(self):
        Campaign(_campaign_spec()).run()
        stats = cache_stats()
        assert stats["scenario_prototype"]["hits"] > 0
        assert stats["hamiltonian_tour"]["hits"] > 0
