"""Concurrency hardening of the result store (the serve daemon's substrate).

One :class:`ResultStore` instance is shared by every scheduler worker
thread; these tests pin down the guarantees the service layer leans on —
thread-shared connection, WAL journaling, benign duplicate puts, and
consistent reads under concurrent writers.
"""

import sqlite3
import threading

from repro.runner import Campaign, RunSpec
from repro.scenarios import ScenarioSpec
from repro.sim import SimulationConfig
from repro.store import ResultStore, run_fingerprint


def cell(seed):
    spec = RunSpec(
        strategy="b-tctp",
        scenario=ScenarioSpec("uniform", {"num_targets": 5, "num_mules": 2}),
        sim=SimulationConfig(horizon=300.0, track_energy=False),
        seed=seed,
    )
    return Campaign(spec).cells()[0]


def fake_record(seed):
    return {"strategy": "b-tctp", "seed": seed, "average_sd": 0.0}


class TestThreadSharedConnection:
    def test_wal_journaling_enabled(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(run_fingerprint(cell(0)), fake_record(0), cell(0))
        mode = sqlite3.connect(store.index_path).execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"

    def test_reads_and_writes_from_worker_threads(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        errors = []

        def worker(offset):
            try:
                for i in range(20):
                    seed = offset * 100 + i
                    spec = cell(seed)
                    fingerprint = run_fingerprint(spec)
                    store.put(fingerprint, fake_record(seed), spec)
                    assert store.contains(fingerprint)
                    assert store.get(fingerprint)["seed"] == seed
                    store.stats()  # aggregate reads interleave with writes
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        assert len(store) == 80

    def test_duplicate_put_race_is_benign(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = cell(7)
        fingerprint = run_fingerprint(spec)
        record = fake_record(7)
        barrier = threading.Barrier(4)
        errors = []

        def racer():
            try:
                barrier.wait(timeout=30)
                store.put(fingerprint, record, spec)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert len(store) == 1
        assert store.get(fingerprint) == record

    def test_two_instances_same_root(self, tmp_path):
        """Cross-connection visibility: a CLI and a daemon sharing one root."""
        writer = ResultStore(tmp_path / "store")
        reader = ResultStore(tmp_path / "store")
        spec = cell(3)
        fingerprint = run_fingerprint(spec)
        writer.put(fingerprint, fake_record(3), spec)
        assert reader.contains(fingerprint)
        assert reader.get(fingerprint) == fake_record(3)
