"""Unit tests for repro.core.plan (route objects and PatrolPlan)."""

import itertools

import numpy as np
import pytest

from repro.core.plan import AlternatingLoopRoute, LoopRoute, PatrolPlan, StochasticRoute
from repro.geometry.point import Point

COORDS = {
    "a": Point(0, 0),
    "b": Point(100, 0),
    "c": Point(100, 100),
    "d": Point(0, 100),
    "r": Point(50, 50),
}


def take(route, n):
    return list(itertools.islice(route.waypoints(), n))


class TestLoopRoute:
    def test_waypoints_cycle(self):
        r = LoopRoute("m1", ["a", "b", "c"], COORDS)
        assert take(r, 7) == ["a", "b", "c", "a", "b", "c", "a"]

    def test_entry_index(self):
        r = LoopRoute("m1", ["a", "b", "c"], COORDS, entry_index=2)
        assert take(r, 4) == ["c", "a", "b", "c"]

    def test_entry_index_wraps(self):
        r = LoopRoute("m1", ["a", "b", "c"], COORDS, entry_index=5)
        assert take(r, 1) == ["c"]

    def test_lap_length_square(self):
        r = LoopRoute("m1", ["a", "b", "c", "d"], COORDS)
        assert r.lap_length() == pytest.approx(400.0)

    def test_start_position(self):
        r = LoopRoute("m1", ["a", "b"], COORDS, start=Point(1, 2))
        assert r.start_position() == Point(1, 2)

    def test_no_start_position_by_default(self):
        assert LoopRoute("m1", ["a", "b"], COORDS).start_position() is None

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            LoopRoute("m1", [], COORDS)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            LoopRoute("m1", ["a", "zzz"], COORDS)

    def test_repeated_nodes_allowed(self):
        # a VIP appears several times per lap in a W-TCTP walk
        r = LoopRoute("m1", ["a", "b", "a", "c"], COORDS)
        assert take(r, 4) == ["a", "b", "a", "c"]

    def test_describe(self):
        d = LoopRoute("m1", ["a", "b", "c", "d"], COORDS, start=Point(0, 0)).describe()
        assert d["mule"] == "m1"
        assert d["lap_nodes"] == 4
        assert d["has_start_position"] is True

    def test_point_of(self):
        r = LoopRoute("m1", ["a", "b"], COORDS)
        assert r.point_of("b") == Point(100, 0)


class TestAlternatingLoopRoute:
    def _route(self, rounds):
        return AlternatingLoopRoute(
            "m1", ["a", "b", "c", "d"], ["a", "b", "r", "c", "d"], COORDS, patrol_rounds=rounds
        )

    def test_recharge_loop_every_r_rounds(self):
        r = self._route(rounds=3)
        lap1_2 = take(r, 8)
        assert "r" not in lap1_2
        lap3 = list(itertools.islice(r.waypoints(), 8, 13))
        # a fresh iterator: laps 1-2 are patrol (8 nodes), lap 3 is the recharge loop (5 nodes)
        assert "r" in lap3

    def test_rounds_of_one_always_recharges(self):
        r = self._route(rounds=1)
        assert "r" in take(r, 5)

    def test_entry_index_applies_to_first_lap_only(self):
        r = AlternatingLoopRoute("m1", ["a", "b", "c", "d"], ["a", "r"], COORDS,
                                 patrol_rounds=5, entry_index=2)
        seq = take(r, 8)
        assert seq[:4] == ["c", "d", "a", "b"]
        assert seq[4:8] == ["a", "b", "c", "d"]

    def test_lap_lengths(self):
        r = self._route(rounds=2)
        assert r.lap_length() == pytest.approx(400.0)
        assert r.recharge_lap_length() > 0

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            AlternatingLoopRoute("m1", [], ["a"], COORDS, patrol_rounds=2)

    def test_describe_includes_rounds(self):
        assert self._route(4).describe()["patrol_rounds"] == 4


class TestStochasticRoute:
    def test_only_candidates_emitted(self):
        r = StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=0)
        assert set(take(r, 50)) <= {"a", "b", "c"}

    def test_no_immediate_repeat_by_default(self):
        r = StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=1)
        seq = take(r, 200)
        assert all(x != y for x, y in zip(seq, seq[1:]))

    def test_repeats_allowed_when_disabled(self):
        r = StochasticRoute("m1", ["a", "b"], COORDS, seed=2, avoid_repeat=False)
        seq = take(r, 300)
        assert any(x == y for x, y in zip(seq, seq[1:]))

    def test_deterministic_for_seed(self):
        a = take(StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=7), 30)
        b = take(StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=7), 30)
        assert a == b

    def test_different_seeds_differ(self):
        a = take(StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=1), 30)
        b = take(StochasticRoute("m1", ["a", "b", "c"], COORDS, seed=2), 30)
        assert a != b

    def test_single_candidate_loop(self):
        r = StochasticRoute("m1", ["a"], COORDS, seed=0)
        assert take(r, 3) == ["a", "a", "a"]

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            StochasticRoute("m1", [], COORDS)

    def test_external_rng_accepted(self):
        rng = np.random.default_rng(5)
        r = StochasticRoute("m1", ["a", "b"], COORDS, rng=rng)
        assert len(take(r, 10)) == 10


class TestPatrolPlan:
    def test_route_lookup(self):
        routes = {"m1": LoopRoute("m1", ["a", "b"], COORDS)}
        plan = PatrolPlan(strategy="test", routes=routes)
        assert plan.route_for("m1") is routes["m1"]
        assert plan.mule_ids == ("m1",)

    def test_mismatched_key_rejected(self):
        with pytest.raises(ValueError):
            PatrolPlan(strategy="test", routes={"m2": LoopRoute("m1", ["a"], COORDS)})

    def test_empty_routes_rejected(self):
        with pytest.raises(ValueError):
            PatrolPlan(strategy="test", routes={})

    def test_total_lap_length_when_shared(self):
        routes = {
            "m1": LoopRoute("m1", ["a", "b", "c", "d"], COORDS),
            "m2": LoopRoute("m2", ["a", "b", "c", "d"], COORDS, entry_index=2),
        }
        plan = PatrolPlan(strategy="test", routes=routes)
        assert plan.total_lap_length() == pytest.approx(400.0)

    def test_total_lap_length_none_when_different(self):
        routes = {
            "m1": LoopRoute("m1", ["a", "b", "c", "d"], COORDS),
            "m2": LoopRoute("m2", ["a", "b"], COORDS),
        }
        assert PatrolPlan(strategy="test", routes=routes).total_lap_length() is None

    def test_describe_contains_metadata(self):
        plan = PatrolPlan(strategy="test", routes={"m1": LoopRoute("m1", ["a"], COORDS)},
                          metadata={"path_length": 42.0})
        desc = plan.describe()
        assert desc["strategy"] == "test"
        assert desc["path_length"] == 42.0
        assert len(desc["routes"]) == 1
