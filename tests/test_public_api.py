"""Tests of the top-level public API (`import repro`) and the module entry point."""

import subprocess
import sys


import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_core_entry_points_exported(self):
        for name in ("plan_btctp", "plan_wtctp", "plan_rwtctp", "PatrolSimulator",
                     "SimulationConfig", "uniform_scenario", "get_strategy"):
            assert name in repro.__all__

    def test_docstring_example_runs(self):
        """The quickstart in the package docstring must keep working."""
        scenario = repro.uniform_scenario(num_targets=15, num_mules=3, seed=1)
        plan = repro.plan_btctp(scenario)
        result = repro.PatrolSimulator(
            scenario, plan, repro.SimulationConfig(horizon=20_000)
        ).run()
        from repro.sim.metrics import average_sd

        assert round(average_sd(result), 3) == 0.0

    def test_strategy_registry_round_trip(self):
        for name in repro.available_strategies():
            if name.startswith("rw"):
                continue  # needs batteries + recharge station
            planner = repro.get_strategy(name)
            assert hasattr(planner, "plan")


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "strategies"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "b-tctp" in proc.stdout

    def test_python_dash_m_repro_simulate(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "--strategy", "chb",
             "--targets", "6", "--mules", "2", "--horizon", "8000", "--json"],
            capture_output=True, text=True, timeout=180,
        )
        assert proc.returncode == 0
        assert '"strategy"' in proc.stdout
