"""Unit tests for repro.network.scenario (Scenario and SimulationParameters)."""

import pytest

from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import Sink, Target


class TestSimulationParameters:
    def test_defaults_match_paper_section_5_1(self):
        p = SimulationParameters()
        assert p.mule_velocity == 2.0
        assert p.sensing_range == 10.0
        assert p.communication_range == 20.0
        assert p.move_cost_per_meter == pytest.approx(8.267)
        assert p.collect_cost == pytest.approx(0.075)

    def test_energy_model_derived(self):
        p = SimulationParameters(move_cost_per_meter=5.0, collect_cost=0.5)
        m = p.energy_model
        assert m.move_cost_per_meter == 5.0
        assert m.collect_cost == 0.5

    def test_invalid_velocity(self):
        with pytest.raises(ValueError):
            SimulationParameters(mule_velocity=0.0)

    def test_invalid_collection_time(self):
        with pytest.raises(ValueError):
            SimulationParameters(collection_time=-1.0)


class TestScenario:
    def test_counts(self, simple_scenario):
        assert simple_scenario.num_targets == 4
        assert simple_scenario.num_mules == 2

    def test_target_by_id(self, simple_scenario):
        assert simple_scenario.target_by_id("g2").id == "g2"
        with pytest.raises(KeyError):
            simple_scenario.target_by_id("nope")

    def test_patrol_points_include_sink(self, simple_scenario):
        pts = simple_scenario.patrol_points()
        assert set(pts) == {"g1", "g2", "g3", "g4", "sink"}

    def test_patrol_points_with_recharge_requires_station(self, simple_scenario):
        with pytest.raises(ValueError):
            simple_scenario.patrol_points(include_recharge=True)

    def test_patrol_points_with_recharge(self, recharge_scenario):
        pts = recharge_scenario.patrol_points(include_recharge=True)
        assert "recharge" in pts

    def test_weights_default(self, simple_scenario):
        w = simple_scenario.weights()
        assert w["sink"] == 1
        assert all(v == 1 for v in w.values())

    def test_weights_without_sink(self, vip_scenario):
        w = vip_scenario.weights(include_sink=False)
        assert "sink" not in w
        assert w["g4"] == 2

    def test_vips_sorted_by_weight(self):
        targets = [
            Target("g1", Point(0, 0), weight=2),
            Target("g2", Point(10, 0), weight=4),
            Target("g3", Point(20, 0), weight=1),
        ]
        sc = Scenario(targets=targets, sink=Sink("sink", Point(5, 5)),
                      mules=[DataMule("m1", Point(0, 0))])
        assert [t.id for t in sc.vips()] == ["g2", "g1"]

    def test_data_rates(self, simple_scenario):
        rates = simple_scenario.data_rates()
        assert set(rates) == {"g1", "g2", "g3", "g4"}

    def test_position_of_all_entities(self, recharge_scenario):
        assert recharge_scenario.position_of("g1") == recharge_scenario.target_by_id("g1").position
        assert recharge_scenario.position_of("sink") == recharge_scenario.sink.position
        assert recharge_scenario.position_of("recharge") == recharge_scenario.recharge_station.position
        assert recharge_scenario.position_of("m1") == recharge_scenario.mules[0].position
        with pytest.raises(KeyError):
            recharge_scenario.position_of("ghost")

    def test_duplicate_ids_rejected(self):
        targets = [Target("x", Point(0, 0))]
        with pytest.raises(ValueError):
            Scenario(targets=targets, sink=Sink("x", Point(1, 1)),
                     mules=[DataMule("m1", Point(0, 0))])

    def test_requires_targets_and_mules(self):
        with pytest.raises(ValueError):
            Scenario(targets=[], sink=Sink("sink", Point(0, 0)),
                     mules=[DataMule("m1", Point(0, 0))])
        with pytest.raises(ValueError):
            Scenario(targets=[Target("g1", Point(0, 0))], sink=Sink("sink", Point(1, 1)), mules=[])


class TestScenarioCopies:
    def test_with_mule_count_truncates(self, fig1_scenario):
        sc = fig1_scenario.with_mule_count(2)
        assert sc.num_mules == 2
        assert [m.id for m in sc.mules] == ["m1", "m2"]

    def test_with_mule_count_pads(self, simple_scenario):
        sc = simple_scenario.with_mule_count(5)
        assert sc.num_mules == 5
        assert len({m.id for m in sc.mules}) == 5

    def test_with_mule_count_invalid(self, simple_scenario):
        with pytest.raises(ValueError):
            simple_scenario.with_mule_count(0)

    def test_with_mule_count_preserves_targets(self, simple_scenario):
        sc = simple_scenario.with_mule_count(3)
        assert [t.id for t in sc.targets] == [t.id for t in simple_scenario.targets]

    def test_fresh_copy_independent_batteries(self):
        targets = [Target("g1", Point(0, 0))]
        mule = DataMule("m1", Point(0, 0), battery=Battery(100.0))
        sc = Scenario(targets=targets, sink=Sink("sink", Point(1, 1)), mules=[mule])
        copy = sc.fresh_copy()
        copy.mules[0].battery.drain(60.0)
        assert sc.mules[0].battery.remaining == 100.0

    def test_fresh_copy_independent_positions(self, simple_scenario):
        copy = simple_scenario.fresh_copy()
        copy.mules[0].position = Point(1.0, 1.0)
        assert simple_scenario.mules[0].position != Point(1.0, 1.0)
