"""Integration proofs for the observability layer.

The load-bearing guarantee: instrumentation is **byte-invisible**.  Records
and fingerprints must be identical with the registry on or off, on both the
serial and the process-pool execution paths — these tests are the proof the
determinism lint's ``obs`` wall-clock allowance and the fingerprint
exemption for ``SimulationConfig.obs`` both point at.

Also covered here: the counter reconciliation invariant (every cell shows
up in exactly one dispatch counter), the pool-worker timing merge (the PR 9
gap — ``cells_timed`` now counts pool cells too), the scheduler's coalesced
counter mirroring, the stdio ``metrics`` op, and the CLI surfaces
(``obs``, ``report --dispatch``, span artifacts next to ``--out``).
"""

import io
import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.runner.campaign import _json_sanitize
from repro.scenarios import ScenarioSpec
from repro.service import ServiceScheduler
from repro.service.stdio import StdioTransport
from repro.sim import SimulationConfig
from repro.store import run_fingerprint


@pytest.fixture(autouse=True)
def clean_registry():
    previous = obs.obs_enabled()
    obs.reset()
    obs.configure(enabled=False)
    yield
    obs.reset()
    obs.configure(enabled=previous)


def campaign_spec(*, obs_on: bool, replications: int = 3) -> CampaignSpec:
    base = RunSpec(
        strategy="b-tctp",
        scenario=ScenarioSpec("uniform", {"num_targets": 6, "num_mules": 2}),
        sim=SimulationConfig(horizon=2_000.0, track_energy=False, obs=obs_on),
        seed=0,
    )
    return CampaignSpec(base=base, grid={"strategy": ["b-tctp", "chb"]},
                        replications=replications)


def canonical(records):
    return [json.dumps(_json_sanitize(r), sort_keys=True) for r in records]


def counter_value(snapshot: dict, name: str, **labels) -> float:
    total = 0
    for counter in snapshot["counters"]:
        if counter["name"] != name:
            continue
        if all(counter["labels"].get(k) == v for k, v in labels.items()):
            total += counter["value"]
    return total


class TestByteIdentity:
    def test_serial_records_and_fingerprints_identical(self):
        plain = Campaign(campaign_spec(obs_on=False)).run(store=False)
        instrumented = Campaign(campaign_spec(obs_on=True)).run(store=False)
        assert canonical(plain.records) == canonical(instrumented.records)
        off_cells = Campaign(campaign_spec(obs_on=False)).cells()
        on_cells = Campaign(campaign_spec(obs_on=True)).cells()
        for off, on in zip(off_cells, on_cells):
            assert run_fingerprint(off) == run_fingerprint(on)
        assert "obs" not in plain.metadata
        assert instrumented.metadata["obs"]["enabled"] is True

    def test_pool_records_identical_and_workers_instrumented(self):
        plain = Campaign(campaign_spec(obs_on=False)).run(store=False)
        pooled = Campaign(campaign_spec(obs_on=True), max_workers=2).run(store=False)
        assert canonical(plain.records) == canonical(pooled.records)
        # worker drains merged into the parent: the per-cell dispatch
        # counters cover every cell even though workers ran them
        snapshot = pooled.metadata["obs"]
        cells = pooled.metadata["num_cells"]
        dispatched = (counter_value(snapshot, "batch_dispatch", outcome="batch")
                      + counter_value(snapshot, "sim_dispatch"))
        assert dispatched == cells

    def test_env_switch_keeps_records_identical(self, monkeypatch):
        plain = Campaign(campaign_spec(obs_on=False)).run(store=False)
        obs.configure(enabled=True)
        instrumented = Campaign(campaign_spec(obs_on=False)).run(store=False)
        assert canonical(plain.records) == canonical(instrumented.records)
        assert instrumented.metadata["obs"]["spans"]["recorded"] > 0


class TestReconciliation:
    def test_every_cell_lands_in_exactly_one_execution_counter(self):
        # Cells the batch layer executes count once as batch_dispatch{batch};
        # cells it declines count once as batch_dispatch{scalar, reason} AND
        # once in sim_dispatch when the per-cell path actually runs them —
        # so executions reconcile as batch + sim_dispatch == cells.
        result = Campaign(campaign_spec(obs_on=True)).run(store=False)
        snapshot = result.metadata["obs"]
        cells = result.metadata["num_cells"]
        batch = counter_value(snapshot, "batch_dispatch", outcome="batch")
        scalar = counter_value(snapshot, "batch_dispatch", outcome="scalar")
        sim = counter_value(snapshot, "sim_dispatch")
        assert batch + sim == cells
        assert scalar == sim  # every decline fell through to the per-cell path
        assert batch > 0

    def test_store_lookup_counters_match_store_metadata(self, tmp_path):
        spec = campaign_spec(obs_on=True, replications=2)
        store = str(tmp_path / "store")
        cold = Campaign(spec).run(store=store)
        warm = Campaign(spec).run(store=store)
        cold_obs, warm_obs = cold.metadata["obs"], warm.metadata["obs"]
        assert counter_value(cold_obs, "store_lookup", outcome="miss") \
            == cold.metadata["store"]["misses"]
        assert counter_value(warm_obs, "store_lookup", outcome="hit") \
            == warm.metadata["store"]["hits"] == warm.metadata["num_cells"]

    def test_snapshot_scoped_to_the_campaign_window(self):
        obs.configure(enabled=True)
        obs.inc("sim_dispatch", 99, outcome="fastpath")  # pre-window noise
        result = Campaign(campaign_spec(obs_on=True)).run(store=False)
        snapshot = result.metadata["obs"]
        cells = result.metadata["num_cells"]
        assert (counter_value(snapshot, "batch_dispatch", outcome="batch")
                + counter_value(snapshot, "sim_dispatch")) == cells


class TestWorkerTimingMerge:
    """PR 9 recorded wall-clock only on the serial path; both paths now do."""

    def test_serial_times_every_per_cell_execution(self):
        from repro.sim.batchpath import batchpath_disabled

        with batchpath_disabled():  # batch-executed groups are not per-cell timed
            result = Campaign(campaign_spec(obs_on=False)).run(store=False)
        timing = result.metadata["timing"]
        assert timing["cells_timed"] == result.metadata["num_cells"]
        assert timing["planning_s"] >= 0 and timing["simulation_s"] > 0

    def test_pool_times_every_cell(self):
        result = Campaign(campaign_spec(obs_on=False), max_workers=2).run(store=False)
        timing = result.metadata["timing"]
        assert timing["cells_timed"] == result.metadata["num_cells"]
        assert timing["simulation_s"] > 0


class TestServiceCounters:
    def test_coalesced_counter_matches_subscriber_count(self):
        release = threading.Event()

        def slow_runner(spec, store=None):
            release.wait(timeout=30)
            return {"seed": spec.seed}, "executed"

        spec = RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 5, "num_mules": 2}),
            sim=SimulationConfig(horizon=300.0, track_energy=False),
        )
        with obs.obs_collected(enabled=True) as window:
            scheduler = ServiceScheduler(store=False, workers=2,
                                         cell_runner=slow_runner)
            try:
                tickets = [scheduler.submit(spec) for _ in range(3)]
                release.set()
                for ticket in tickets:
                    ticket.records()
            finally:
                release.set()
                scheduler.shutdown()
            snapshot = window.snapshot()
        stats = scheduler.stats()
        assert stats["coalesced"] == 2
        assert counter_value(snapshot, "service_admission", outcome="coalesced") == 2
        assert counter_value(snapshot, "service_admission", outcome="executed") == 1
        assert counter_value(snapshot, "service_requests", outcome="admitted") == 3
        assert counter_value(snapshot, "service_shutdowns") == 1

    def test_stdio_metrics_op_serves_prometheus_text(self):
        output = io.StringIO()
        scheduler = ServiceScheduler(store=False, workers=1)
        transport = StdioTransport(
            scheduler,
            input_stream=io.StringIO('{"op": "metrics"}\n{"op": "nope"}\n'),
            output_stream=output,
        )
        transport.serve_forever()
        lines = [json.loads(line) for line in output.getvalue().splitlines()]
        assert lines[0]["event"] == "metrics"
        assert "repro_service_requests_total 0" in lines[0]["text"]
        assert "repro_obs_enabled 0" in lines[0]["text"]
        assert "ops: stats, metrics, lookup" in lines[1]["message"]


class TestCliSurfaces:
    def _run_campaign(self, tmp_path, *, obs_on=True):
        spec = campaign_spec(obs_on=obs_on, replications=2)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        out = tmp_path / "camp.json"
        rc = main(["run", str(spec_path), "--no-store", "--out", str(out), "--json"])
        assert rc == 0
        return out

    def test_run_writes_span_artifacts_next_to_out(self, tmp_path, capsys):
        out = self._run_campaign(tmp_path)
        capsys.readouterr()
        log = tmp_path / "camp.spans.jsonl"
        trace = tmp_path / "camp.trace.json"
        assert log.exists() and trace.exists()
        spans = obs.read_span_log(log)
        assert spans and obs.validate_trace(json.loads(trace.read_text())) == []
        assert json.loads(out.read_text())["metadata"]["obs"]["spans"]["recorded"] \
            == len(spans)

    def test_run_without_obs_writes_no_span_artifacts(self, tmp_path, capsys):
        self._run_campaign(tmp_path, obs_on=False)
        capsys.readouterr()
        assert not (tmp_path / "camp.spans.jsonl").exists()
        assert not (tmp_path / "camp.trace.json").exists()

    def test_obs_command_summarises_artifact_and_replays_trace(self, tmp_path, capsys):
        out = self._run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["obs", str(out)]) == 0
        plain = capsys.readouterr().out
        assert "Counters of" in plain and "spans:" in plain
        assert main(["obs", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == json.loads(out.read_text())["metadata"]["obs"]
        replay = tmp_path / "replay.json"
        assert main(["obs", str(tmp_path / "camp.spans.jsonl"),
                     "--trace", str(replay)]) == 0
        capsys.readouterr()
        assert json.loads(replay.read_text()) \
            == json.loads((tmp_path / "camp.trace.json").read_text())

    def test_obs_command_rejects_artifact_without_obs_block(self, tmp_path, capsys):
        out = self._run_campaign(tmp_path, obs_on=False)
        capsys.readouterr()
        assert main(["obs", str(out)]) == 2
        assert "no metadata.obs block" in capsys.readouterr().err

    def test_report_dispatch_renders_per_reason_counts(self, tmp_path, capsys):
        out = self._run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["report", "--dispatch", str(out), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)["dispatch"]
        assert rows and all(r["counter"] in ("sim_dispatch", "batch_dispatch")
                            for r in rows)
        executed = sum(r["count"] for r in rows
                       if (r["counter"], r["outcome"]) != ("batch_dispatch", "scalar"))
        assert executed == json.loads(out.read_text())["metadata"]["num_cells"]
        assert main(["report", "--dispatch", str(out)]) == 0
        assert "Dispatch outcomes" in capsys.readouterr().out
