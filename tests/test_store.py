"""Tests for the persistent result store (repro.store): fingerprints,
ResultStore round-trips, resumable campaigns, query/report, and gc."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.runner import Campaign, CampaignSpec, RunSpec, execute_resumable
from repro.runner.campaign import execute_many
from repro.scenarios import ScenarioSpec
from repro.sim.engine import SimulationConfig
from repro.store import (
    ResultStore,
    StoredRun,
    canonical_run_payload,
    clear_store,
    code_salt,
    configure,
    default_root,
    default_store,
    matches,
    parse_filter_expression,
    resolve_store,
    run_fingerprint,
    store_enabled,
    store_stats,
)
from repro.store.report import entry_rows, export_records_csv, export_records_json, summarize_records


def small_spec(**overrides) -> RunSpec:
    defaults = dict(
        strategy="b-tctp",
        scenario=ScenarioSpec("uniform", {"num_targets": 6, "num_mules": 2}),
        sim=SimulationConfig(horizon=4000.0, track_energy=False),
        seed=1,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


def small_campaign(**overrides) -> CampaignSpec:
    defaults = dict(
        base=small_spec(),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=2,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def dumps(records) -> str:
    return json.dumps(records, sort_keys=True, allow_nan=True)


class TestFingerprint:
    def test_stable_across_processes_inputs(self):
        assert run_fingerprint(small_spec()) == run_fingerprint(small_spec())

    def test_alias_spelling_changes_the_fingerprint(self):
        # execute_run copies spec.strategy into the record verbatim, so the
        # alias and the registry name produce different records — a shared
        # address would serve one spelling's record for the other.
        assert run_fingerprint(small_spec(strategy="btctp")) != run_fingerprint(
            small_spec(strategy="b-tctp")
        )

    def test_warm_hit_preserves_the_exact_strategy_spelling(self, tmp_path):
        from repro.runner import execute_run

        store = ResultStore(tmp_path)
        alias = small_spec(strategy="btctp")
        records, _, _ = execute_resumable([alias], store=store)
        warm, hits, _ = execute_resumable([alias], store=store)
        assert hits == 1
        assert warm[0]["strategy"] == "btctp" == records[0]["strategy"]
        assert dumps(warm) == dumps([execute_run(alias)])

    def test_family_alias_shares_fingerprint(self):
        # No record field carries the raw family spelling, so family aliases
        # may (and should) share an address.
        a = small_spec(scenario=ScenarioSpec("grid-jitter", {"num_targets": 6}))
        b = small_spec(scenario=ScenarioSpec("grid_jitter", {"num_targets": 6}))
        assert run_fingerprint(a) == run_fingerprint(b)

    def test_every_input_axis_changes_the_fingerprint(self):
        base = run_fingerprint(small_spec())
        variants = [
            small_spec(strategy="chb"),
            small_spec(seed=2),
            small_spec(scenario=ScenarioSpec("uniform", {"num_targets": 7, "num_mules": 2})),
            small_spec(scenario=ScenarioSpec("ring", {"num_targets": 6, "num_mules": 2})),
            small_spec(sim=SimulationConfig(horizon=5000.0, track_energy=False)),
            small_spec(metrics=("visit_count",)),
            small_spec(labels={"tag": "x"}),
            small_spec(params={"policy": "shortest"}),
        ]
        fingerprints = [run_fingerprint(v) for v in variants]
        assert len({base, *fingerprints}) == len(variants) + 1

    def test_param_order_does_not_matter(self):
        a = small_spec(scenario=ScenarioSpec("uniform", {"num_targets": 6, "num_mules": 2}))
        b = small_spec(scenario=ScenarioSpec("uniform", {"num_mules": 2, "num_targets": 6}))
        assert run_fingerprint(a) == run_fingerprint(b)

    def test_code_salt_invalidates(self):
        spec = small_spec()
        assert run_fingerprint(spec) != run_fingerprint(spec, salt="other-version")
        assert code_salt().endswith(__import__("repro").__version__)

    def test_seed_declaring_strategy_matches_campaign_expansion(self):
        # A bare random spec and its with_strategy_defaults() twin share an
        # address, exactly as execute_run injects the seed at run time.
        bare = small_spec(strategy="random", seed=3)
        expanded = bare.with_strategy_defaults()
        assert run_fingerprint(bare) == run_fingerprint(expanded)

    def test_canonical_payload_is_json_safe(self):
        payload = canonical_run_payload(small_spec(labels={"pos": (1, 2)}))
        text = json.dumps(payload)  # tuples already lists, no default= needed
        assert json.loads(text)["labels"]["pos"] == [1, 2]


class TestResultStore:
    def test_miss_then_hit_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        fp = run_fingerprint(spec)
        assert store.get(fp) is None
        record = {"strategy": "b-tctp", "average_sd": 0.25, "n": 3}
        store.put(fp, record, spec)
        assert store.contains(fp) and fp in store
        assert store.get(fp) == record
        assert len(store) == 1

    def test_nan_round_trips_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"vip_sd": float("nan"), "average_sd": 1.5}
        store.put("f" * 40, record)
        got = store.get("f" * 40)
        assert np.isnan(got["vip_sd"])  # NaN preserved, not null
        assert dumps([got]) == dumps([record])

    def test_key_order_preserved(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"z": 1, "a": 2, "m": 3}
        store.put("a" * 40, record)
        assert list(store.get("a" * 40)) == ["z", "a", "m"]

    def test_numpy_values_stored_as_python_twins(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"count": np.int64(4), "arr": np.array([1.0, 2.0]), "val": np.float32(0.5)}
        store.put("b" * 40, record)
        got = store.get("b" * 40)
        assert got["count"] == 4 and got["arr"] == [1.0, 2.0]
        assert got["val"] == pytest.approx(0.5)

    def test_self_heals_missing_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        fp = run_fingerprint(spec)
        entry = store.put(fp, {"x": 1}, spec)
        entry.path.unlink()
        assert store.get(fp) is None          # miss, row dropped
        assert not store.contains(fp)

    def test_clear_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("c" * 40, {"x": 1}, small_spec())
        store.get("c" * 40)
        store.get("0" * 40)
        stats = store.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1 and stats["misses"] == 1
        assert stats["payload_bytes"] > 0
        assert stats["library_versions"] == {code_salt(): 1}
        assert store.clear() == 1
        assert len(store) == 0 and store.stats()["entries"] == 0

    def test_gc_sweeps_other_versions_and_old_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        keep = store.put(run_fingerprint(small_spec()), {"x": 1}, small_spec())
        # Forge a stale-version row and an ancient row directly in the index.
        import sqlite3
        from contextlib import closing

        stale = store.put("d" * 40, {"x": 2})
        old = store.put("e" * 40, {"x": 3})
        with closing(sqlite3.connect(store.index_path)) as conn, conn:
            conn.execute("UPDATE runs SET library_version='repro-patrol/0.0.1' "
                         "WHERE fingerprint=?", ("d" * 40,))
            conn.execute("UPDATE runs SET created_at=? WHERE fingerprint=?",
                         (time.time() - 10 * 86_400, "e" * 40))
        assert store.gc(max_age_days=5.0) == 2
        assert store.contains(keep.fingerprint)
        assert not store.contains(stale.fingerprint)
        assert not store.contains(old.fingerprint)

    def test_gc_sweeps_orphan_payloads(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a1" + "0" * 38, {"x": 1})
        orphan = store.records_dir / "zz" / "zz-orphan.json"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}")
        assert store.gc() == 1
        assert not orphan.exists()
        assert len(store) == 1

    def test_requires_some_root(self, monkeypatch):
        with pytest.raises(ValueError, match="no store root configured"):
            ResultStore()


class TestQuery:
    @pytest.fixture()
    def populated(self, tmp_path):
        store = ResultStore(tmp_path)
        for strategy in ("chb", "b-tctp"):
            for num_targets in (6, 10):
                spec = small_spec(
                    strategy=strategy,
                    scenario=ScenarioSpec("uniform",
                                          {"num_targets": num_targets, "num_mules": 2}),
                )
                record = {"strategy": strategy, "num_targets": num_targets,
                          "average_sd": 0.0 if strategy == "b-tctp" else 5.0}
                store.put(run_fingerprint(spec), record, spec)
        return store

    def test_filter_by_strategy_alias(self, populated):
        entries = populated.query(strategy="btctp")
        assert len(entries) == 2
        assert all(e.strategy == "b-tctp" for e in entries)

    def test_alias_stored_runs_are_indexed_canonically(self, tmp_path):
        # A record stored under the alias spelling is still found by a query
        # for the registry name (and vice versa): the index column is
        # canonical even though the fingerprint/record keep the raw name.
        store = ResultStore(tmp_path)
        spec = small_spec(strategy="btctp")
        store.put(run_fingerprint(spec), {"strategy": "btctp"}, spec)
        assert len(store.query(strategy="b-tctp")) == 1
        assert len(store.query(strategy="btctp")) == 1
        assert store.entries(strategy="b-tctp")[0].strategy == "b-tctp"

    def test_filter_by_family_and_params(self, populated):
        assert len(populated.query(family="uniform")) == 4
        assert len(populated.query(num_targets=10)) == 2
        assert len(populated.query(num_targets=(7, None))) == 2   # open-ended range
        assert len(populated.query(num_targets=(None, 7))) == 2
        assert len(populated.query(strategy="chb", num_targets=[6, 10])) == 2

    def test_filter_on_record_metrics(self, populated):
        entries = populated.query(average_sd=(1.0, None))
        assert {e.strategy for e in entries} == {"chb"}

    def test_unknown_key_matches_nothing(self, populated):
        assert populated.query(gap_fraction=0.4) == []

    def test_records_and_limit(self, populated):
        assert len(populated.records(strategy="chb")) == 2
        assert len(populated.query(limit=3)) == 3

    def test_entries_listing_has_no_payloads(self, populated):
        entries = populated.entries()
        assert len(entries) == 4
        assert all(e.record is None for e in entries)
        headers, rows = entry_rows(entries)
        assert headers[0] == "fingerprint" and len(rows) == 4

    def test_parse_filter_expressions(self):
        assert parse_filter_expression("num_targets=20") == ("num_targets", 20)
        assert parse_filter_expression("horizon=1000..2000") == ("horizon", (1000, 2000))
        assert parse_filter_expression("horizon=..2000") == ("horizon", (None, 2000))
        assert parse_filter_expression("strategy=chb|b-tctp") == ("strategy", ["chb", "b-tctp"])
        assert parse_filter_expression("flag=true") == ("flag", True)
        with pytest.raises(ValueError):
            parse_filter_expression("no-equals-sign")

    def test_matches_range_against_string_is_false(self):
        entry = StoredRun(fingerprint="x", strategy="chb", family="uniform", seed=0,
                          created_at=0.0, library_version="v", path=None,
                          record={"strategy": "chb"})
        assert not matches(entry, {"strategy": (1, 2)})


class TestResumableCampaign:
    def test_warm_resume_executes_zero_cells_byte_identical(self, tmp_path):
        spec = small_campaign()
        cold = Campaign(spec).run(store=tmp_path)
        warm = Campaign(spec).run(store=tmp_path)
        assert cold.metadata["store"] == {"root": str(tmp_path), "hits": 0, "misses": 4}
        assert warm.metadata["store"] == {"root": str(tmp_path), "hits": 4, "misses": 0}
        assert dumps(warm.records) == dumps(cold.records)

    def test_store_records_match_storeless_run(self, tmp_path):
        spec = small_campaign()
        plain = Campaign(spec).run()
        stored = Campaign(spec).run(store=tmp_path)
        assert "store" not in plain.metadata
        assert dumps(plain.records) == dumps(stored.records)

    def test_changed_axis_value_re_executes_only_affected_cells(self, tmp_path):
        Campaign(small_campaign()).run(store=tmp_path)
        changed = small_campaign(grid={"strategy": ["chb", "sweep"]})
        result = Campaign(changed).run(store=tmp_path)
        assert result.metadata["store"]["hits"] == 2      # the chb cells
        assert result.metadata["store"]["misses"] == 2    # only the sweep cells

    def test_changed_scenario_param_re_executes_only_affected_cells(self, tmp_path):
        grid = {"num_targets": [6, 8], "strategy": ["b-tctp"]}
        Campaign(small_campaign(grid=grid)).run(store=tmp_path)
        grid2 = {"num_targets": [6, 9], "strategy": ["b-tctp"]}
        result = Campaign(small_campaign(grid=grid2)).run(store=tmp_path)
        assert result.metadata["store"]["hits"] == 2
        assert result.metadata["store"]["misses"] == 2

    def test_parallel_and_serial_share_addresses(self, tmp_path):
        spec = small_campaign()
        Campaign(spec, max_workers=2).run(store=tmp_path)
        warm = Campaign(spec).run(store=tmp_path)
        assert warm.metadata["store"]["misses"] == 0

    def test_progress_counts_hits_as_done(self, tmp_path):
        spec = small_campaign()
        Campaign(spec).run(store=tmp_path)
        calls = []
        Campaign(spec).run(store=tmp_path, progress=lambda d, t: calls.append((d, t)))
        assert calls == [(4, 4)]

    def test_progress_without_store_counts_cells(self):
        calls = []
        Campaign(small_campaign()).run(progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_writeback_streams_per_cell(self, tmp_path):
        # A crash mid-campaign keeps the finished cells: records are written
        # back as they complete, not in one batch at the end.
        store = ResultStore(tmp_path)
        cells = small_campaign().cells()
        seen_sizes = []
        original = store.put

        def tracking_put(fingerprint, record, spec=None):
            entry = original(fingerprint, record, spec)
            seen_sizes.append(len(store))
            return entry

        store.put = tracking_put
        execute_resumable(cells, store=store)
        assert seen_sizes == [1, 2, 3, 4]

    def test_execute_resumable_returns_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = small_campaign().cells()
        records, hits, misses = execute_resumable(cells, store=store)
        assert (hits, misses) == (0, 4)
        assert dumps(records) == dumps(execute_many(cells))
        records2, hits2, misses2 = execute_resumable(cells, store=store)
        assert (hits2, misses2) == (4, 0)
        assert dumps(records2) == dumps(records)


class TestDefaultStoreConfiguration:
    def test_no_ambient_store_by_default(self):
        assert default_root() is None
        assert default_store() is None
        assert not store_enabled()
        assert resolve_store(None) is None
        assert store_stats() is None
        assert clear_store() == 0

    def test_env_var_configures_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert default_root() == tmp_path
        assert store_enabled()
        store = resolve_store(None)
        assert isinstance(store, ResultStore) and store.root == tmp_path

    def test_configure_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
        configure(root=tmp_path / "explicit")
        assert default_root() == tmp_path / "explicit"

    def test_disabled_blocks_implicit_but_not_explicit(self, tmp_path):
        configure(root=tmp_path, enabled=False)
        assert resolve_store(None) is None
        assert not store_enabled()
        explicit = resolve_store(True)
        assert isinstance(explicit, ResultStore) and explicit.root == tmp_path

    def test_resolve_store_forms(self, tmp_path):
        assert resolve_store(False) is None
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path)).root == tmp_path
        with pytest.raises(TypeError):
            resolve_store(42)

    def test_campaign_resumes_implicitly_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        spec = small_campaign()
        cold = Campaign(spec).run()
        warm = Campaign(spec).run()
        assert cold.metadata["store"]["misses"] == 4
        assert warm.metadata["store"]["misses"] == 0
        opted_out = Campaign(spec).run(store=False)
        assert "store" not in opted_out.metadata


class TestExperimentsResume:
    def test_run_experiment_cells_resumes_from_configured_store(self, tmp_path):
        from repro.experiments.common import ExperimentSettings, experiment_campaign, run_experiment_cells

        configure(root=tmp_path)
        settings = ExperimentSettings.quick(replications=2, horizon=4000.0,
                                            num_targets=6, num_mules=2)
        campaign = experiment_campaign(settings, "b-tctp", track_energy=False)
        first = run_experiment_cells(campaign, settings)
        store = default_store()
        assert len(store) == len(first)
        second = run_experiment_cells(campaign, settings)
        assert dumps(second) == dumps(first)
        assert store.stats()["entries"] == len(first)

    def test_opt_out_with_store_false(self, tmp_path):
        from repro.experiments.common import ExperimentSettings, experiment_campaign, run_experiment_cells

        configure(root=tmp_path)
        settings = ExperimentSettings.quick(replications=1, horizon=4000.0,
                                            num_targets=6, num_mules=2, store=False)
        campaign = experiment_campaign(settings, "b-tctp", track_energy=False)
        run_experiment_cells(campaign, settings)
        assert default_store().stats()["entries"] == 0


class TestReport:
    def test_summarize_records(self, tmp_path):
        spec = small_campaign()
        Campaign(spec).run(store=tmp_path)
        store = ResultStore(tmp_path)
        headers, rows = summarize_records(store.query(), metrics=("average_sd",), by="strategy")
        assert headers == ["strategy", "mean average_sd", "runs"]
        by_strategy = {row[0]: row for row in rows}
        assert set(by_strategy) == {"chb", "b-tctp"}
        assert by_strategy["b-tctp"][2] == 2

    def test_exports_are_readable_and_atomic(self, tmp_path):
        spec = small_campaign()
        Campaign(spec).run(store=tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        entries = store.query(strategy="chb")
        out = export_records_json(entries, tmp_path / "out" / "records.json")
        payload = json.loads(out.read_text())
        assert len(payload["records"]) == 2
        csv_path = export_records_csv(entries, tmp_path / "out" / "records.csv")
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 records
        # no temp droppings left behind
        assert list((tmp_path / "out").glob("*.tmp")) == []
