"""Integration tests: full plan -> simulate -> metrics pipelines across modules.

These exercise the public API exactly the way the examples and the experiment
harness do, and assert the cross-cutting invariants the paper relies on.
"""

import pytest

from repro import (
    PatrolSimulator,
    SimulationConfig,
    available_strategies,
    clustered_scenario,
    get_strategy,
    plan_btctp,
    plan_rwtctp,
    plan_wtctp,
    uniform_scenario,
)
from repro.core.btctp import expected_visiting_interval
from repro.sim.metrics import (
    average_dcdt,
    average_sd,
    delivery_latencies,
    max_visiting_interval,
    per_target_intervals,
)


def simulate(scenario, plan, horizon=30_000, **kw):
    return PatrolSimulator(scenario.fresh_copy(), plan, SimulationConfig(horizon=horizon, **kw)).run()


NON_ENERGY_STRATEGIES = ["random", "sweep", "chb", "b-tctp", "w-tctp"]


class TestAllStrategiesEndToEnd:
    @pytest.mark.parametrize("name", NON_ENERGY_STRATEGIES)
    def test_every_target_eventually_visited(self, name):
        sc = uniform_scenario(num_targets=12, num_mules=3, seed=21)
        kwargs = {"seed": 21} if name == "random" else {}
        plan = get_strategy(name, **kwargs).plan(sc)
        result = simulate(sc, plan, horizon=60_000)
        visited = set(result.visited_targets())
        assert visited >= {t.id for t in sc.targets}

    @pytest.mark.parametrize("name", NON_ENERGY_STRATEGIES)
    def test_visit_times_strictly_ordered_and_within_horizon(self, name):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=22)
        kwargs = {"seed": 22} if name == "random" else {}
        plan = get_strategy(name, **kwargs).plan(sc)
        result = simulate(sc, plan, horizon=25_000)
        assert all(0 <= v.time <= 25_000 for v in result.visits)
        for target in result.visited_targets():
            times = result.visit_times(target)
            assert times == sorted(times)

    @pytest.mark.parametrize("name", NON_ENERGY_STRATEGIES)
    def test_data_is_delivered_to_sink(self, name):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=23)
        kwargs = {"seed": 23} if name == "random" else {}
        plan = get_strategy(name, **kwargs).plan(sc)
        result = simulate(sc, plan, horizon=60_000)
        assert result.total_delivered_data() > 0
        assert all(lat > 0 for lat in delivery_latencies(result))

    def test_registry_exposes_all_documented_strategies(self):
        assert {"random", "sweep", "chb", "b-tctp", "w-tctp", "rw-tctp"} <= set(available_strategies())


class TestPaperHeadlineClaims:
    """The four qualitative claims of Section V, checked end to end on one scenario."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return uniform_scenario(num_targets=15, num_mules=4, seed=30)

    @pytest.fixture(scope="class")
    def results(self, scenario):
        out = {}
        for name in ("random", "sweep", "chb", "b-tctp"):
            kwargs = {"seed": 30} if name == "random" else {}
            plan = get_strategy(name, **kwargs).plan(scenario)
            out[name] = simulate(scenario, plan, horizon=50_000)
        return out

    def test_tctp_sd_is_zero_others_positive(self, results):
        assert average_sd(results["b-tctp"]) == pytest.approx(0.0, abs=1e-6)
        for name in ("random", "chb"):
            assert average_sd(results[name]) > 0

    def test_tctp_interval_matches_theory(self, scenario, results):
        plan_meta_interval = plan_btctp(scenario).metadata["expected_visiting_interval"]
        assert average_dcdt(results["b-tctp"]) == pytest.approx(plan_meta_interval, rel=1e-3)

    def test_random_worst_max_interval(self, results):
        tctp = max_visiting_interval(results["b-tctp"])
        rnd = max_visiting_interval(results["random"])
        assert rnd > tctp

    def test_tctp_minimises_max_interval_among_all(self, results):
        maxima = {n: max_visiting_interval(r) for n, r in results.items()}
        assert maxima["b-tctp"] == min(maxima.values())


class TestWeightedIntegration:
    def test_vips_visited_proportionally_to_weight(self):
        sc = uniform_scenario(num_targets=12, num_mules=2, seed=31, num_vips=2, vip_weight=3)
        plan = plan_wtctp(sc, policy="balanced")
        result = simulate(sc, plan, horizon=80_000)
        vip_ids = [t.id for t in sc.targets if t.is_vip]
        ntp_ids = [t.id for t in sc.targets if not t.is_vip]
        vip_rate = sum(result.visit_count(t) for t in vip_ids) / len(vip_ids)
        ntp_rate = sum(result.visit_count(t) for t in ntp_ids) / len(ntp_ids)
        assert vip_rate / ntp_rate == pytest.approx(3.0, rel=0.25)

    def test_wpp_strategy_on_clustered_field(self):
        sc = clustered_scenario(num_targets=16, num_mules=3, num_clusters=4, seed=32,
                                num_vips=2, vip_weight=2)
        plan = plan_wtctp(sc)
        result = simulate(sc, plan, horizon=60_000)
        assert set(result.visited_targets()) >= {t.id for t in sc.targets}


class TestRechargeIntegration:
    def test_rwtctp_outlives_wtctp(self):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=33,
                              mule_battery=80_000.0, with_recharge_station=True)
        r_with = simulate(sc, plan_rwtctp(sc), horizon=60_000)
        r_without = simulate(sc, plan_wtctp(sc), horizon=60_000)
        assert len(r_with.dead_mules()) <= len(r_without.dead_mules())
        assert r_with.total_delivered_data() >= r_without.total_delivered_data()

    def test_recharge_keeps_intervals_bounded(self):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=34,
                              mule_battery=120_000.0, with_recharge_station=True)
        result = simulate(sc, plan_rwtctp(sc), horizon=80_000)
        intervals = per_target_intervals(result)
        # every target keeps being visited (no unbounded starvation after recharges)
        assert all(len(iv) >= 3 for iv in intervals.values())


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def run():
            sc = uniform_scenario(num_targets=12, num_mules=3, seed=40, num_vips=1, vip_weight=2)
            plan = plan_wtctp(sc, policy="balanced")
            res = simulate(sc, plan, horizon=30_000)
            return [(round(v.time, 9), v.node_id, v.mule_id) for v in res.visits]

        assert run() == run()
