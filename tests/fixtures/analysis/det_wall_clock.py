"""Seeded violation fixture: ``det-wall-clock`` must fire here."""

import time
from datetime import datetime


def stamp_record(record):
    record["created"] = time.time()          # finding: wall clock
    record["pretty"] = datetime.now()        # finding: wall clock
    return record
