"""Seeded violation fixture: ``det-global-np-random`` must fire here."""

import numpy as np


def jitter(n):
    np.random.seed(0)                    # finding: global RNG state
    return np.random.rand(n)             # finding: global RNG draw


def seeded_ok(seed, n):
    rng = np.random.default_rng(seed)    # allowed: seeded generator idiom
    return rng.random(n)
