"""Suppression fixture: every violation here carries ``# repro: allow[...]``.

The linter must report nothing for this file (3 inline suppressions).
"""

import os
import time


def tolerated():
    started = time.time()                # repro: allow[det-wall-clock]
    mode = os.getenv("MODE", "fast")     # repro: allow[det-env-branch]
    order = []
    for item in {"a", "b"}:              # repro: allow[det-set-iteration]
        order.append(item)
    return started, mode, order
