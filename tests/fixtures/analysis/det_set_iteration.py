"""Seeded violation fixture: ``det-set-iteration`` must fire here."""


def build_rows(names):
    rows = []
    for name in set(names):                  # finding: undefined iteration order
        rows.append(name)
    rows += [n for n in {"a", "b", "c"}]     # finding: comprehension over a set
    return rows


def sorted_ok(names):
    return [name for name in sorted(set(names))]   # allowed: sorted first
