"""Seeded violation fixture: ``det-unseeded-random`` must fire here.

Never imported — only parsed by the determinism linter in
``tests/test_analysis_check.py``.
"""

import random
from random import shuffle


def pick(values):
    shuffle(values)                      # finding: from-imported global RNG
    return random.choice(values)         # finding: module-level global RNG


def seeded_ok(seed, values):
    rng = random.Random(seed)            # allowed: seeded constructor idiom
    return rng.choice(values)
