"""Seeded violation fixture: ``det-env-branch`` must fire here."""

import os


def horizon_default():
    if os.environ.get("FAST_MODE"):          # finding: environment branch
        return 1_000.0
    return float(os.getenv("HORIZON", "50000"))   # finding: environment read
