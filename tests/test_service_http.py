"""Wire-level tests for the HTTP transport of ``repro-patrol serve``.

A real daemon on an ephemeral loopback port per test class, driven with
:mod:`http.client` — no test doubles between the bytes on the socket and the
assertions.  The invariants under test are the ISSUE's acceptance criteria:
streamed records byte-identical to CLI execution, coalescing observable over
the wire, and overload mapped to ``429`` + ``Retry-After``.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.runner.campaign import _json_sanitize
from repro.scenarios import ScenarioSpec
from repro.service import ServiceScheduler
from repro.service.http import HttpTransport
from repro.sim import SimulationConfig
from repro.store import ResultStore


def tiny_run(seed=0, strategy="b-tctp"):
    return RunSpec(
        strategy=strategy,
        scenario=ScenarioSpec("uniform", {"num_targets": 5, "num_mules": 2}),
        sim=SimulationConfig(horizon=300.0, track_energy=False),
        seed=seed,
    )


def tiny_campaign():
    return CampaignSpec(base=tiny_run(), grid={"strategy": ["b-tctp", "chb"]},
                        replications=2)


def canonical(records):
    return [json.dumps(_json_sanitize(r), sort_keys=True) for r in records]


class _Daemon:
    """One background daemon plus an http.client helper bound to its port."""

    def __init__(self, transport):
        self.transport = transport

    def request(self, method, path, body=None, timeout=60):
        conn = HTTPConnection("127.0.0.1", self.transport.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {} if payload is None else {"Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, dict(response.getheaders()), raw
        finally:
            conn.close()

    def get_json(self, path):
        status, _headers, raw = self.request("GET", path)
        return status, json.loads(raw)

    def post_stream(self, path, spec):
        """POST a spec and parse the NDJSON stream into a list of events."""
        body = spec if isinstance(spec, dict) else json.loads(spec.to_json())
        status, headers, raw = self.request("POST", path, body=body)
        if status != 200:
            return status, headers, json.loads(raw)
        assert headers.get("Content-Type") == "application/x-ndjson"
        events = [json.loads(line) for line in raw.decode().splitlines()]
        return status, headers, events


@pytest.fixture
def daemon(tmp_path):
    scheduler = ServiceScheduler(store=ResultStore(tmp_path / "store"), workers=2)
    transport = HttpTransport(scheduler, port=0).start()
    yield _Daemon(transport)
    transport.stop()


@pytest.fixture
def storeless_daemon():
    scheduler = ServiceScheduler(store=False, workers=2)
    transport = HttpTransport(scheduler, port=0).start()
    yield _Daemon(transport)
    transport.stop()


class TestPlumbing:
    def test_healthz_version_stats(self, daemon):
        status, health = daemon.get_json("/healthz")
        assert (status, health["status"], health["accepting"]) == (200, "ok", True)

        import repro
        status, version = daemon.get_json("/version")
        assert (status, version) == (200, {"version": repro.__version__})

        status, stats = daemon.get_json("/stats")
        assert status == 200
        assert stats["version"] == repro.__version__
        assert stats["scheduler"]["requests"] == 0
        assert stats["store"]["entries"] == 0  # the shared store formatter

    def test_metrics_serves_prometheus_text(self, daemon):
        status, headers, raw = daemon.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_store_entries" in text  # daemon fixture has a store
        # the scheduler gauges agree with the JSON /stats document
        _status, stats = daemon.get_json("/stats")
        assert f"repro_service_workers {stats['scheduler']['workers']}" in text

    def test_unknown_route_404_lists_routes(self, daemon):
        status, payload = daemon.get_json("/nope")
        assert status == 404
        assert "/healthz" in payload["error"]
        assert "/metrics" in payload["error"]

    def test_get_on_submit_routes_is_405(self, daemon):
        status, _headers, raw = daemon.request("GET", "/runs")
        assert status == 405
        assert "POST" in json.loads(raw)["error"]

    def test_invalid_json_body_is_400(self, daemon):
        status, _headers, raw = daemon.request("POST", "/runs", body=None)
        # empty body decodes to JSON null, not an object
        assert status == 400
        assert "JSON object" in json.loads(raw)["error"]

    def test_kind_route_mismatch_is_400(self, daemon):
        spec = json.loads(tiny_campaign().to_json())
        status, _headers, payload = daemon.post_stream("/runs", spec)
        assert status == 400
        assert "/campaigns" in payload["error"]

    def test_bad_spec_is_400_with_suggestion(self, daemon):
        status, _headers, payload = daemon.post_stream(
            "/runs", {"strategy": "b-tctpp"})
        assert status == 400
        assert "b-tctp" in payload["error"]


class TestStreaming:
    def test_run_stream_and_lookup_lifecycle(self, daemon):
        spec = tiny_run()
        status, _headers, events = daemon.post_stream("/runs", spec)
        assert status == 200
        assert [e["event"] for e in events] == ["start", "cell", "done"]
        cell = events[1]
        assert cell["source"] == "executed"

        # the fingerprint the stream reports is immediately queryable
        status, found = daemon.get_json(f"/runs/{cell['fingerprint']}")
        assert status == 200
        assert found["status"] == "stored"
        assert found["record"] == cell["record"]

        status, missing = daemon.get_json("/runs/ffff")
        assert (status, missing["status"]) == (404, "unknown")

    def test_campaign_stream_byte_identical_to_cli_run(self, daemon):
        spec = tiny_campaign()
        status, _headers, events = daemon.post_stream("/campaigns", spec)
        assert status == 200
        served = [e["record"] for e in events if e["event"] == "cell"]
        direct = Campaign(spec).run(store=False).records
        assert canonical(served) == canonical(direct)
        assert events[-1] == {"event": "done", "total": 4, "executed": 4,
                              "store": 0, "coalesced": 0, "failed": 0}

    def test_repost_serves_everything_from_store(self, daemon):
        spec = tiny_campaign()
        _status, _headers, cold = daemon.post_stream("/campaigns", spec)
        _status, _headers, warm = daemon.post_stream("/campaigns", spec)
        assert warm[-1]["store"] == 4 and warm[-1]["executed"] == 0
        cold_records = [e["record"] for e in cold if e["event"] == "cell"]
        warm_records = [e["record"] for e in warm if e["event"] == "cell"]
        assert canonical(warm_records) == canonical(cold_records)


class TestBackpressureAndCoalescing:
    @pytest.fixture
    def slow_daemon(self):
        self.release = threading.Event()
        started = self.started = threading.Event()

        def slow_runner(spec, store=None):
            started.set()
            self.release.wait(timeout=60)
            return {"seed": spec.seed}, "executed"

        scheduler = ServiceScheduler(store=False, workers=1, queue_limit=1,
                                     retry_after=7.0, cell_runner=slow_runner)
        transport = HttpTransport(scheduler, port=0).start()
        yield _Daemon(transport)
        self.release.set()
        transport.stop()

    def test_overflow_is_429_with_retry_after(self, slow_daemon):
        filler = threading.Thread(
            target=slow_daemon.post_stream, args=("/runs", tiny_run(seed=0)))
        filler.start()
        try:
            assert self.started.wait(timeout=30)  # the queue is now full
            status, headers, payload = slow_daemon.post_stream(
                "/runs", tiny_run(seed=1))
            assert status == 429
            assert headers["Retry-After"] == "7"
            assert payload["retry_after"] == 7.0
        finally:
            self.release.set()
            filler.join(timeout=60)

    def test_concurrent_identical_posts_coalesce(self, slow_daemon):
        spec = tiny_run(seed=0)
        results = [None] * 3

        def post(slot):
            results[slot] = slow_daemon.post_stream("/runs", spec)

        threads = [threading.Thread(target=post, args=(slot,)) for slot in range(3)]
        for t in threads:
            t.start()
        try:
            assert self.started.wait(timeout=30)
            # all three requests admitted against a queue_limit of 1: two
            # coalesced onto the in-flight cell instead of consuming slots
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, stats = slow_daemon.get_json("/stats")
                if stats["scheduler"]["requests"] == 3:
                    break
                time.sleep(0.05)
            assert stats["scheduler"]["requests"] == 3
            assert stats["scheduler"]["executed"] == 1
            assert stats["scheduler"]["coalesced"] == 2
        finally:
            self.release.set()
        for t in threads:
            t.join(timeout=60)
        streams = [r[2] for r in results]
        for events in streams:
            assert [e["event"] for e in events] == ["start", "cell", "done"]
            assert events[1]["record"] == {"seed": 0}

    def test_draining_daemon_reports_503(self, storeless_daemon):
        storeless_daemon.transport.scheduler.shutdown(wait=True)
        status, health = storeless_daemon.get_json("/healthz")
        assert (status, health["status"]) == (503, "draining")
        status, _headers, payload = storeless_daemon.post_stream(
            "/runs", tiny_run())
        assert status == 503
        assert "not accepting" in payload["error"]


class TestStorelessStats:
    def test_stats_store_is_null_without_a_store(self, storeless_daemon):
        status, stats = storeless_daemon.get_json("/stats")
        assert status == 200
        assert stats["store"] is None
