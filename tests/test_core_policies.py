"""Unit tests for repro.core.policies (Shortest-Length / Balancing-Length break-edge selection)."""

import math

import pytest

from repro.core.policies import (
    BalancingLengthPolicy,
    BreakEdgePolicy,
    ShortestLengthPolicy,
    get_policy,
)
from repro.geometry.point import Point
from repro.graphs.hamiltonian import convex_hull_insertion_tour
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_weighted_patrolling_path


def ring_structure(n=12, radius=200.0):
    coords = {
        f"g{i}": Point(400 + radius * math.cos(2 * math.pi * i / n),
                       400 + radius * math.sin(2 * math.pi * i / n))
        for i in range(n)
    }
    tour = convex_hull_insertion_tour(coords)
    return MultiTour.from_tour(tour), coords


class TestGetPolicy:
    def test_by_name(self):
        assert isinstance(get_policy("shortest"), ShortestLengthPolicy)
        assert isinstance(get_policy("balanced"), BalancingLengthPolicy)

    def test_aliases(self):
        assert isinstance(get_policy("Shortest-Length"), ShortestLengthPolicy)
        assert isinstance(get_policy("balancing-length"), BalancingLengthPolicy)
        assert isinstance(get_policy("balance"), BalancingLengthPolicy)

    def test_instance_passthrough(self):
        p = ShortestLengthPolicy()
        assert get_policy(p) is p

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_policy("magic")


class TestCandidateEdges:
    def test_excludes_edges_incident_to_vip(self):
        structure, _ = ring_structure(6)
        candidates = BreakEdgePolicy.candidate_edges(structure, "g0")
        assert all("g0" not in (u, v) for u, v, _k in candidates)
        assert len(candidates) == 4  # 6 edges minus the 2 incident to g0

    def test_added_length_is_triangle_inequality_slack(self):
        structure, coords = ring_structure(6)
        added = BreakEdgePolicy.added_length(structure, "g0", "g2", "g3")
        direct = coords["g2"].distance_to(coords["g3"])
        via = coords["g2"].distance_to(coords["g0"]) + coords["g3"].distance_to(coords["g0"])
        assert added == pytest.approx(via - direct)
        assert added >= 0


class TestShortestLengthPolicy:
    @pytest.mark.parametrize("weight", [2, 3, 4])
    def test_vip_degree_after_apply(self, weight):
        structure, _ = ring_structure(12)
        ShortestLengthPolicy().apply(structure, "g0", weight)
        assert structure.degree("g0") == 2 * weight
        assert structure.is_eulerian()

    def test_weight_one_is_noop(self):
        structure, _ = ring_structure(8)
        before = structure.length()
        ShortestLengthPolicy().apply(structure, "g0", 1)
        assert structure.length() == pytest.approx(before)

    def test_minimises_added_length_greedily(self):
        structure, _ = ring_structure(12)
        pristine = structure.copy()
        policy = ShortestLengthPolicy()
        best = min(
            policy.added_length(pristine, "g0", u, v)
            for u, v, _k in policy.candidate_edges(pristine, "g0")
        )
        before = structure.length()
        policy.apply(structure, "g0", 2)
        assert structure.length() - before == pytest.approx(best)

    def test_invalid_weight_rejected(self):
        structure, _ = ring_structure(8)
        with pytest.raises(ValueError):
            ShortestLengthPolicy().apply(structure, "g0", 0)

    def test_too_large_weight_raises(self):
        # a triangle has only 1 edge not incident to the hub: weight 3 is impossible
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(50, 80)}
        structure = MultiTour.from_tour(Tour(["a", "b", "c"], coords))
        with pytest.raises(ValueError):
            ShortestLengthPolicy().apply(structure, "a", 3)

    def test_other_nodes_keep_degree_two(self):
        structure, _ = ring_structure(10)
        ShortestLengthPolicy().apply(structure, "g0", 3)
        for node in structure.nodes:
            if node != "g0":
                assert structure.degree(node) == 2


class TestBalancingLengthPolicy:
    @pytest.mark.parametrize("weight", [2, 3, 4])
    def test_vip_degree_after_apply(self, weight):
        structure, _ = ring_structure(16)
        BalancingLengthPolicy().apply(structure, "g0", weight)
        assert structure.degree("g0") == 2 * weight
        assert structure.is_eulerian()

    def test_cycles_are_balanced_on_a_ring(self):
        structure, _ = ring_structure(16)
        BalancingLengthPolicy().apply(structure, "g0", 2)
        cycles = structure.cycles_at("g0")
        assert len(cycles) == 2
        lengths = sorted(c.length for c in cycles)
        # on a symmetric ring the two cycles should be within ~25% of each other
        assert lengths[1] / lengths[0] < 1.35

    def test_balanced_spread_not_worse_than_shortest(self):
        s_short, _ = ring_structure(20)
        s_bal, _ = ring_structure(20)
        ShortestLengthPolicy().apply(s_short, "g0", 3)
        BalancingLengthPolicy().apply(s_bal, "g0", 3)

        def spread(structure):
            lengths = [c.length for c in structure.cycles_at("g0")]
            return max(lengths) - min(lengths)

        assert spread(s_bal) <= spread(s_short) + 1e-6

    def test_shortest_total_length_not_longer_than_balanced(self):
        s_short, _ = ring_structure(20)
        s_bal, _ = ring_structure(20)
        ShortestLengthPolicy().apply(s_short, "g0", 3)
        BalancingLengthPolicy().apply(s_bal, "g0", 3)
        assert s_short.length() <= s_bal.length() + 1e-6

    def test_weight_one_is_noop(self):
        structure, _ = ring_structure(8)
        before = structure.length()
        BalancingLengthPolicy().apply(structure, "g0", 1)
        assert structure.length() == pytest.approx(before)

    def test_refinement_can_be_disabled(self):
        structure, _ = ring_structure(16)
        BalancingLengthPolicy(refine=False).apply(structure, "g0", 3)
        assert structure.degree("g0") == 6

    def test_not_enough_edges_raises(self):
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(50, 80)}
        structure = MultiTour.from_tour(Tour(["a", "b", "c"], coords))
        with pytest.raises(ValueError):
            BalancingLengthPolicy().apply(structure, "a", 3)

    def test_structure_remains_valid_wpp(self):
        structure, coords = ring_structure(14)
        BalancingLengthPolicy().apply(structure, "g3", 3)
        weights = {n: (3 if n == "g3" else 1) for n in coords}
        validate_weighted_patrolling_path(structure, weights)


class TestMultiVipInteraction:
    def test_two_vips_processed_sequentially(self):
        structure, coords = ring_structure(16)
        ShortestLengthPolicy().apply(structure, "g0", 2)
        ShortestLengthPolicy().apply(structure, "g8", 3)
        assert structure.degree("g0") == 4
        assert structure.degree("g8") == 6
        weights = {n: 1 for n in coords}
        weights.update({"g0": 2, "g8": 3})
        validate_weighted_patrolling_path(structure, weights)

    def test_balanced_two_vips(self):
        structure, coords = ring_structure(16)
        BalancingLengthPolicy().apply(structure, "g0", 2)
        BalancingLengthPolicy().apply(structure, "g8", 2)
        weights = {n: 1 for n in coords}
        weights.update({"g0": 2, "g8": 2})
        validate_weighted_patrolling_path(structure, weights)
