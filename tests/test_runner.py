"""Tests for the unified execution API (repro.runner) and the registry metadata."""

import json

import pytest

from repro.baselines.base import (
    available_strategies,
    canonical_strategy_name,
    filter_strategy_kwargs,
    get_strategy,
    strategy_info,
    strategy_params,
)
from repro.runner import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    RunSpec,
    execute_many,
    execute_run,
    group_mean,
    load_spec,
    spec_from_dict,
)
from repro.sim.engine import SimulationConfig
from repro.workloads.generator import ScenarioConfig

QUICK_SCENARIO = ScenarioConfig(num_targets=8, num_mules=2, mule_placement="random")
QUICK_SIM = SimulationConfig(horizon=8_000.0, track_energy=False)


def quick_spec(strategy="b-tctp", **overrides) -> RunSpec:
    defaults = dict(strategy=strategy, scenario=QUICK_SCENARIO, sim=QUICK_SIM, seed=3)
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestRegistryMetadata:
    def test_declared_params_from_dataclass_fields(self):
        assert "policy" in strategy_params("w-tctp")
        assert "seed" in strategy_params("random")
        assert "policy" not in strategy_params("b-tctp")

    def test_canonical_name_resolves_aliases(self):
        assert canonical_strategy_name("btctp") == "b-tctp"
        assert canonical_strategy_name("TCTP") == "b-tctp"
        assert canonical_strategy_name("rw-tctp") == "rw-tctp"

    def test_canonical_name_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            canonical_strategy_name("nope")

    def test_available_canonical_only(self):
        canonical = available_strategies(include_aliases=False)
        assert "b-tctp" in canonical
        assert "btctp" not in canonical
        assert "btctp" in available_strategies()

    def test_get_strategy_rejects_undeclared_kwargs(self):
        with pytest.raises(ValueError, match="does not accept") as err:
            get_strategy("b-tctp", policy="shortest")
        assert "accepted:" in str(err.value)
        assert "tsp_method" in str(err.value)

    def test_filter_strategy_kwargs(self):
        shared = {"policy": "shortest", "seed": 7, "bogus": 1}
        assert filter_strategy_kwargs("w-tctp", shared) == {"policy": "shortest"}
        assert filter_strategy_kwargs("random", shared) == {"seed": 7}

    def test_strategy_info_carries_aliases_and_description(self):
        info = strategy_info("wtctp")
        assert info.name == "w-tctp"
        assert "wtctp" in info.aliases
        assert info.description

    def test_plain_function_factory_params_inspected(self, monkeypatch):
        """Non-dataclass factories get their params from the signature."""
        from repro.baselines import base

        monkeypatch.setattr(base, "_REGISTRY", {})
        monkeypatch.setattr(base, "_ALIASES", {})
        monkeypatch.setattr(base, "_defaults_loaded", False)

        def make_planner(alpha=1.0, beta=2):
            return None

        base.register_strategy("fn-strategy", make_planner)
        assert base.strategy_params("fn-strategy") == {"alpha", "beta"}
        base.get_strategy("fn-strategy", alpha=3.0)  # declared kwarg forwarded
        with pytest.raises(ValueError, match="does not accept"):
            base.get_strategy("fn-strategy", gamma=1)

    def test_var_keyword_factory_stays_permissive(self, monkeypatch):
        """Factories taking **kwargs keep the pre-declaration forward-everything behavior."""
        from repro.baselines import base

        monkeypatch.setattr(base, "_REGISTRY", {})
        monkeypatch.setattr(base, "_ALIASES", {})
        monkeypatch.setattr(base, "_defaults_loaded", False)

        captured = {}
        base.register_strategy("kw-strategy", lambda **kw: captured.update(kw))
        base.get_strategy("kw-strategy", anything=42)
        assert captured == {"anything": 42}
        assert base.filter_strategy_kwargs("kw-strategy", {"x": 1}) == {"x": 1}

    def test_custom_registration_never_shadows_builtins(self, monkeypatch):
        """Registering first on a fresh registry must still load the defaults."""
        from repro.baselines import base

        monkeypatch.setattr(base, "_REGISTRY", {})
        monkeypatch.setattr(base, "_ALIASES", {})
        monkeypatch.setattr(base, "_defaults_loaded", False)

        base.register_strategy("custom", lambda **kw: None, params=("seed",))
        names = base.available_strategies(include_aliases=False)
        assert "custom" in names
        assert {"random", "sweep", "chb", "b-tctp", "w-tctp", "rw-tctp"} <= set(names)


class TestRunSpecSerialization:
    def test_json_round_trip_defaults(self):
        spec = RunSpec(strategy="b-tctp")
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_full(self):
        spec = quick_spec(
            strategy="w-tctp",
            params={"policy": "shortest"},
            metrics=("wpp_length", ("dcdt_series", {"num_points": 11})),
            labels={"cell": "a"},
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.metrics == ("wpp_length", ("dcdt_series", {"num_points": 11}))

    def test_scenario_positions_restored_as_tuples(self):
        spec = quick_spec(scenario=ScenarioConfig(sink_position=(10.0, 20.0)))
        restored = RunSpec.from_json(spec.to_json())
        assert restored.scenario.sink_position == (10.0, 20.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown run spec field"):
            RunSpec.from_dict({"strategy": "chb", "frobnicate": 1})
        with pytest.raises(ValueError, match="unknown scenario field"):
            RunSpec.from_dict({"strategy": "chb", "scenario": {"targets": 5}})

    def test_campaign_round_trip(self):
        spec = CampaignSpec(
            base=quick_spec(),
            grid={"strategy": ["chb", "b-tctp"], "num_mules": [2, 3]},
            replications=2,
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_spec_from_dict_detects_kind(self):
        assert isinstance(spec_from_dict({"strategy": "chb"}), RunSpec)
        assert isinstance(spec_from_dict({"kind": "run", "strategy": "chb"}), RunSpec)
        campaign = spec_from_dict({"base": {"strategy": "chb"}, "replications": 2})
        assert isinstance(campaign, CampaignSpec)
        with pytest.raises(ValueError, match="unknown spec kind"):
            spec_from_dict({"kind": "fleet"})

    def test_load_spec_from_file(self, tmp_path):
        spec = CampaignSpec(base=quick_spec(), grid={"strategy": ["chb"]}, replications=3)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert load_spec(path) == spec


class TestCampaignExpansion:
    def test_cell_count_and_determinism(self):
        spec = CampaignSpec(
            base=quick_spec(),
            grid={"strategy": ["chb", "b-tctp"], "num_mules": [2, 3]},
            replications=2,
        )
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2
        assert cells == spec.cells()

    def test_seed_schedule_matches_replicate_seeds(self):
        spec = CampaignSpec(base=quick_spec(seed=2011), replications=3)
        assert spec.seeds() == [2011, 3011, 4011]
        assert [c.seed for c in spec.cells()] == [2011, 3011, 4011]

    def test_axis_scope_resolution(self):
        spec = CampaignSpec(
            base=quick_spec(strategy="w-tctp"),
            grid={"num_targets": [5], "horizon": [1_000.0], "policy": ["shortest"]},
        )
        (cell,) = spec.cells()
        assert cell.scenario.num_targets == 5
        assert cell.sim.horizon == 1_000.0
        assert cell.params["policy"] == "shortest"
        assert cell.labels["replication"] == 0

    def test_explicit_scope_prefixes(self):
        spec = CampaignSpec(
            base=quick_spec(strategy="w-tctp"),
            grid={"scenario.num_vips": [1], "sim.track_energy": [True], "params.policy": ["balanced"]},
        )
        (cell,) = spec.cells()
        assert cell.scenario.num_vips == 1
        assert cell.sim.track_energy is True
        assert cell.params["policy"] == "balanced"

    def test_unknown_axis_scope_rejected(self):
        spec = CampaignSpec(base=quick_spec(), grid={"warp.factor": [9]})
        with pytest.raises(ValueError, match="unknown grid axis"):
            spec.cells()

    def test_bare_axis_matching_nothing_rejected(self):
        """A typo'd bare axis must error, not expand into N identical runs."""
        for axis in ("num_target", "communication_range"):
            spec = CampaignSpec(base=quick_spec(), grid={axis: [1, 2]})
            with pytest.raises(ValueError, match="matches no scenario/sim field"):
                spec.cells()

    def test_params_scoped_axis_no_strategy_declares_rejected(self):
        """An explicit params. axis is no escape hatch for a typo'd parameter."""
        spec = CampaignSpec(base=quick_spec(), grid={"params.tsp_methd": ["a", "b"]})
        with pytest.raises(ValueError, match="identical cells"):
            spec.cells()

    def test_typoed_base_param_rejected_at_expansion(self):
        spec = CampaignSpec(
            base=quick_spec(strategy="w-tctp", params={"polcy": "shortest"}),
            grid={"strategy": ["w-tctp", "b-tctp"]},
        )
        with pytest.raises(ValueError, match="polcy"):
            spec.cells()

    def test_shared_param_accepted_by_one_strategy_passes(self):
        spec = CampaignSpec(
            base=quick_spec(params={"policy": "shortest"}),
            grid={"strategy": ["b-tctp", "w-tctp"]},
        )
        assert spec.cells()  # 'policy' is declared by w-tctp, so the set is valid

    def test_bare_param_axis_allowed_when_any_strategy_declares_it(self):
        spec = CampaignSpec(
            base=quick_spec(),
            grid={"strategy": ["b-tctp", "w-tctp"], "policy": ["shortest"]},
        )
        by_strategy = {c.strategy: c for c in spec.cells()}
        assert by_strategy["w-tctp"].params == {"policy": "shortest"}

    def test_seed_axis_shifts_replication_schedule(self):
        spec = CampaignSpec(base=quick_spec(seed=0), grid={"seed": [100, 200]},
                            replications=2, seed_stride=10)
        cells = spec.cells()
        assert [c.seed for c in cells] == [100, 110, 200, 210]
        # the true seed lives in the record's seed column, not in a label
        assert all("seed" not in c.labels for c in cells)
        records = [execute_run(c) for c in cells]
        assert [r["seed"] for r in records] == [100, 110, 200, 210]
        assert records[0] != records[2]  # different seeds, different runs

    def test_shared_params_filtered_per_strategy(self):
        spec = CampaignSpec(
            base=quick_spec(params={"policy": "shortest"}),
            grid={"strategy": ["b-tctp", "w-tctp", "random"]},
        )
        by_strategy = {c.strategy: c for c in spec.cells()}
        assert "policy" not in by_strategy["b-tctp"].params
        assert by_strategy["w-tctp"].params == {"policy": "shortest"}
        # strategies declaring a seed get the cell's replication seed
        assert by_strategy["random"].params == {"seed": 3}


class TestExecuteRun:
    def test_record_contents(self):
        record = execute_run(quick_spec())
        assert record["strategy"] == "b-tctp"
        assert record["planner"] == "B-TCTP"
        assert record["seed"] == 3
        assert record["num_targets"] == 8
        assert record["average_sd"] == pytest.approx(0.0, abs=1e-6)
        assert record["average_dcdt"] > 0

    def test_extra_metrics_and_labels(self):
        record = execute_run(quick_spec(
            metrics=("path_length", ("dcdt_series", {"num_points": 5})),
            labels={"cell": "a1"},
        ))
        assert record["path_length"] > 0
        assert len(record["dcdt_series"]) == 5
        assert record["cell"] == "a1"

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            execute_run(quick_spec(metrics=("definitely_not_a_metric",)))

    def test_undeclared_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            execute_run(quick_spec(params={"policy": "shortest"}))

    def test_seed_reaches_seed_declaring_strategy(self):
        """execute_run and Campaign must agree on seed injection (same record)."""
        spec = quick_spec(strategy="random", seed=5)
        direct = execute_run(spec)
        (via_campaign,) = Campaign(spec).run().records
        direct["replication"] = via_campaign["replication"]  # campaign-only label
        assert direct == via_campaign

    def test_explicit_seed_param_wins(self):
        spec = quick_spec(strategy="random", seed=5, params={"seed": 9})
        other = quick_spec(strategy="random", seed=5)
        assert execute_run(spec) != execute_run(other)

    def test_validate_surfaces_typoed_params(self):
        spec = quick_spec(strategy="w-tctp", params={"polcy": "shortest"})
        with pytest.raises(ValueError, match="polcy"):
            spec.validate()
        assert quick_spec(strategy="w-tctp", params={"policy": "shortest"}).validate()

    def test_typoed_metric_rejected_before_any_simulation(self):
        spec = quick_spec(metrics=("dcdt_seris",))
        with pytest.raises(ValueError, match="dcdt_seris"):
            spec.validate()
        with pytest.raises(ValueError, match="dcdt_seris"):
            CampaignSpec(base=spec, replications=2).cells()


class TestCampaignExecution:
    @pytest.fixture(scope="class")
    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            base=quick_spec(),
            grid={"strategy": ["chb", "b-tctp", "random"]},
            replications=2,
        )

    @pytest.fixture(scope="class")
    def serial(self, spec) -> CampaignResult:
        return Campaign(spec).run()

    def test_record_per_cell_in_order(self, spec, serial):
        assert len(serial) == len(spec.cells())
        assert [r["strategy"] for r in serial] == [c.strategy for c in spec.cells()]

    def test_parallel_identical_to_serial(self, spec, serial):
        parallel = Campaign(spec, max_workers=4).run()
        assert json.dumps(serial.records) == json.dumps(parallel.records)

    def test_records_are_json_safe(self, serial):
        assert json.loads(serial.to_json())["records"] == serial.records

    def test_group_mean(self, serial):
        sd = serial.group_mean("average_sd", by="strategy")
        assert sd["b-tctp"] == pytest.approx(0.0, abs=1e-6)
        assert sd["chb"] > 0.0
        keyed = serial.group_mean("average_sd", by=("strategy", "seed"))
        assert ("chb", 3) in keyed

    def test_save_json_and_csv(self, serial, tmp_path):
        json_path = serial.save_json(tmp_path / "records.json")
        payload = json.loads(json_path.read_text())
        assert len(payload["records"]) == len(serial)
        assert payload["spec"]["kind"] == "campaign"

        assert payload["_meta"]["library_version"]

        csv_path = serial.save_csv(tmp_path / "records.csv")
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == len(serial) + 1
        assert lines[0].startswith("strategy,")

    def test_progress_callback(self, spec):
        seen = []
        execute_many(spec.cells()[:2], progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_single_run_spec_coerced(self):
        result = Campaign(quick_spec()).run()
        assert len(result) == 1
        assert result.records[0]["replication"] == 0


class TestCampaignResultTables:
    def test_to_rows_scalar_only_drops_series(self):
        result = CampaignResult(records=[
            {"strategy": "chb", "average_sd": 1.0, "dcdt_series": [1.0, 2.0]},
            {"strategy": "b-tctp", "average_sd": 0.0, "dcdt_series": [3.0]},
        ])
        headers, rows = result.to_rows(scalar_only=True)
        assert headers == ["strategy", "average_sd"]
        assert rows == [["chb", 1.0], ["b-tctp", 0.0]]

    def test_columns_union_ordered(self):
        result = CampaignResult(records=[{"a": 1}, {"b": 2, "a": 3}])
        assert result.columns() == ["a", "b"]
        assert result.values("b") == [pytest.approx(float("nan"), nan_ok=True), 2]

    def test_to_json_is_strict_json_with_nan_metrics(self):
        result = CampaignResult(records=[
            {"strategy": "chb", "vip_sd": float("nan"), "series": [1.0, float("inf")]},
        ])
        payload = json.loads(result.to_json())
        assert payload["records"][0]["vip_sd"] is None
        assert payload["records"][0]["series"] == [1.0, None]
        assert "NaN" not in result.to_json()

    def test_group_mean_skips_nan(self):
        records = [
            {"k": "x", "v": 1.0},
            {"k": "x", "v": float("nan")},
            {"k": "x", "v": 3.0},
        ]
        assert group_mean(records, "v", by="k") == {"x": pytest.approx(2.0)}
