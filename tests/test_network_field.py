"""Unit tests for repro.network.field (deployment region, clusters, connectivity)."""

import numpy as np
import pytest

from repro.geometry.point import Point, distance
from repro.network.field import Cluster, Field, connected_components_by_range


class TestField:
    def test_default_is_papers_800m_square(self):
        f = Field()
        assert f.width == 800.0 and f.height == 800.0
        assert f.area == pytest.approx(640_000.0)

    def test_center(self):
        assert Field(100, 200).center == Point(50, 100)

    def test_center_with_origin(self):
        assert Field(100, 100, origin=Point(50, 50)).center == Point(100, 100)

    def test_contains(self):
        f = Field(100, 100)
        assert f.contains(Point(50, 50))
        assert f.contains(Point(0, 0))
        assert f.contains(Point(100, 100))
        assert not f.contains(Point(101, 50))
        assert not f.contains(Point(50, -1))

    def test_clamp(self):
        f = Field(100, 100)
        assert f.clamp(Point(150, -20)) == Point(100, 0)
        assert f.clamp(Point(50, 50)) == Point(50, 50)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Field(0, 100)

    def test_sample_uniform_inside(self):
        f = Field(300, 300)
        rng = np.random.default_rng(0)
        pts = f.sample_uniform(rng, 100)
        assert len(pts) == 100
        assert all(f.contains(p) for p in pts)

    def test_sample_uniform_deterministic_with_seed(self):
        f = Field()
        a = f.sample_uniform(np.random.default_rng(7), 10)
        b = f.sample_uniform(np.random.default_rng(7), 10)
        assert a == b


class TestCluster:
    def test_contains(self):
        c = Cluster(Point(100, 100), 50)
        assert c.contains(Point(120, 100))
        assert not c.contains(Point(200, 100))

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Cluster(Point(0, 0), 0)

    def test_sample_inside_disc(self):
        c = Cluster(Point(100, 100), 40)
        pts = c.sample(np.random.default_rng(1), 50)
        assert len(pts) == 50
        assert all(distance(p, c.center) <= 40 + 1e-6 for p in pts)

    def test_sample_clamped_to_field(self):
        f = Field(100, 100)
        c = Cluster(Point(95, 95), 30)
        pts = c.sample(np.random.default_rng(2), 30, field=f)
        assert all(f.contains(p) for p in pts)

    def test_separation(self):
        a = Cluster(Point(0, 0), 10)
        b = Cluster(Point(100, 0), 20)
        assert a.separation(b) == pytest.approx(70.0)
        assert b.separation(a) == pytest.approx(70.0)

    def test_separation_negative_when_overlapping(self):
        a = Cluster(Point(0, 0), 30)
        b = Cluster(Point(40, 0), 30)
        assert a.separation(b) < 0


class TestConnectivity:
    def test_single_component_when_close(self):
        pts = [Point(0, 0), Point(10, 0), Point(20, 0)]
        comps = connected_components_by_range(pts, communication_range=15)
        assert comps == [[0, 1, 2]]

    def test_disconnected_clusters_detected(self):
        pts = [Point(0, 0), Point(10, 0), Point(500, 500), Point(510, 500)]
        comps = connected_components_by_range(pts, communication_range=20)
        assert len(comps) == 2
        assert [0, 1] in comps and [2, 3] in comps

    def test_empty(self):
        assert connected_components_by_range([], 20) == []

    def test_every_point_isolated_at_zero_range(self):
        pts = [Point(i * 100, 0) for i in range(5)]
        comps = connected_components_by_range(pts, communication_range=0)
        assert len(comps) == 5

    def test_chain_connectivity_is_transitive(self):
        # consecutive points within range, endpoints far apart: still one component
        pts = [Point(i * 15, 0) for i in range(10)]
        comps = connected_components_by_range(pts, communication_range=20)
        assert len(comps) == 1

    def test_paper_motivating_scenario_is_disconnected(self):
        """Clustered workloads at the paper's 20 m communication range really are disconnected."""
        from repro.workloads.generator import clustered_scenario

        sc = clustered_scenario(num_targets=20, num_mules=2, num_clusters=4, seed=5)
        pts = [t.position for t in sc.targets]
        comps = connected_components_by_range(pts, sc.params.communication_range)
        assert len(comps) > 1
