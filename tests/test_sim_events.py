"""Unit tests for repro.sim.events (event queue determinism and ordering)."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, mule_id="m1")
        q.push(1.0, EventKind.ARRIVAL, mule_id="m2")
        q.push(3.0, EventKind.ARRIVAL, mule_id="m3")
        assert [q.pop().mule_id for _ in range(3)] == ["m2", "m3", "m1"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, mule_id="first")
        q.push(1.0, EventKind.ARRIVAL, mule_id="second")
        q.push(1.0, EventKind.ARRIVAL, mule_id="third")
        assert [q.pop().mule_id for _ in range(3)] == ["first", "second", "third"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, EventKind.STOP)
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, EventKind.STOP)
        q.push(2.0, EventKind.STOP)
        assert q.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.STOP)

    def test_payload_and_node_preserved(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, mule_id="m1", node_id="g3", payload={"x": 1})
        e = q.pop()
        assert e.node_id == "g3"
        assert e.payload == {"x": 1}
        assert e.kind is EventKind.ARRIVAL

    def test_event_ordering_dataclass(self):
        a = Event(time=1.0, sequence=0, kind=EventKind.STOP)
        b = Event(time=1.0, sequence=1, kind=EventKind.STOP)
        c = Event(time=0.5, sequence=2, kind=EventKind.STOP)
        assert c < a < b


class TestEventKind:
    def test_members(self):
        assert EventKind.ARRIVAL.value == "arrival"
        assert EventKind.INITIALIZED.value == "initialized"
        assert EventKind.ENERGY_DEPLETED.value == "energy_depleted"
