"""Unit tests for repro.geometry.point."""

import numpy as np
import pytest

from repro.geometry.point import (
    Point,
    as_array,
    as_point,
    centroid,
    distance,
    distance_matrix,
    northmost_index,
    total_length,
)


class TestPoint:
    def test_distance_to_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_accepts_tuple(self):
        assert Point(1, 1).distance_to((4, 5)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -7.1)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -4) == Point(4, -2)

    def test_translated_returns_new_point(self):
        p = Point(0, 0)
        q = p.translated(1, 1)
        assert p == Point(0, 0) and q == Point(1, 1)

    def test_towards_partial(self):
        p = Point(0, 0).towards(Point(10, 0), 4)
        assert p == Point(4, 0)

    def test_towards_beyond_target_overshoots_linearly(self):
        p = Point(0, 0).towards(Point(10, 0), 20)
        assert p.x == pytest.approx(20.0)

    def test_towards_coincident_returns_self(self):
        p = Point(3, 3)
        assert p.towards(Point(3, 3), 5) == p

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            Point(0, 0).x = 5  # type: ignore[misc]

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)


class TestCoercions:
    def test_as_point_passthrough(self):
        p = Point(1, 2)
        assert as_point(p) is p

    def test_as_point_from_tuple(self):
        assert as_point((3, 4)) == Point(3.0, 4.0)

    def test_as_array_shape(self):
        arr = as_array([Point(0, 0), (1, 2), Point(3, 4)])
        assert arr.shape == (3, 2)
        assert arr[1, 1] == 2.0

    def test_as_array_empty(self):
        assert as_array([]).shape == (0, 2)


class TestDistanceHelpers:
    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 9)
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_distance_matrix_matches_pairwise(self):
        pts = [Point(0, 0), Point(3, 4), Point(6, 8)]
        m = distance_matrix(pts)
        assert m.shape == (3, 3)
        assert np.allclose(np.diag(m), 0.0)
        assert m[0, 1] == pytest.approx(5.0)
        assert m[0, 2] == pytest.approx(10.0)
        assert np.allclose(m, m.T)

    def test_distance_matrix_empty(self):
        assert distance_matrix([]).shape == (0, 0)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert c == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_total_length_open(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 8)]
        assert total_length(pts) == pytest.approx(9.0)

    def test_total_length_closed_adds_return_edge(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 3)]
        assert total_length(pts, closed=True) == pytest.approx(4 + 3 + 5)

    def test_total_length_single_point(self):
        assert total_length([Point(1, 1)]) == 0.0
        assert total_length([Point(1, 1)], closed=True) == 0.0


class TestNorthmost:
    def test_picks_largest_y(self):
        pts = [Point(0, 0), Point(5, 10), Point(3, 7)]
        assert northmost_index(pts) == 1

    def test_tie_broken_by_smallest_x(self):
        pts = [Point(5, 10), Point(1, 10), Point(3, 2)]
        assert northmost_index(pts) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            northmost_index([])
