"""Unit tests for repro.baselines (Random, Sweep, CHB) and the strategy registry."""

import pytest

from repro.baselines.base import available_strategies, get_strategy
from repro.baselines.chb import CHBPlanner
from repro.baselines.random_patrol import RandomPlanner
from repro.baselines.sweep import SweepPlanner, partition_targets_balanced, partition_targets_by_angle
from repro.core.plan import LoopRoute, StochasticRoute
from repro.geometry.point import Point
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_sd
from repro.workloads.generator import uniform_scenario


class TestRegistry:
    def test_all_expected_strategies_present(self):
        names = available_strategies()
        for expected in ("random", "sweep", "chb", "b-tctp", "w-tctp", "rw-tctp"):
            assert expected in names

    def test_get_strategy_instantiates(self):
        assert isinstance(get_strategy("random"), RandomPlanner)
        assert isinstance(get_strategy("sweep"), SweepPlanner)
        assert isinstance(get_strategy("chb"), CHBPlanner)

    def test_kwargs_forwarded(self):
        planner = get_strategy("w-tctp", policy="shortest")
        assert planner.policy == "shortest"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            get_strategy("definitely-not-a-strategy")

    def test_aliases_resolve_to_same_planner_type(self):
        assert type(get_strategy("btctp")) is type(get_strategy("b-tctp"))
        assert type(get_strategy("tctp")) is type(get_strategy("b-tctp"))


class TestRandomPlanner:
    def test_routes_are_stochastic(self, fig1_scenario):
        plan = RandomPlanner(seed=1).plan(fig1_scenario)
        assert all(isinstance(r, StochasticRoute) for r in plan.routes.values())

    def test_candidates_include_sink_by_default(self, fig1_scenario):
        plan = RandomPlanner(seed=1).plan(fig1_scenario)
        route = next(iter(plan.routes.values()))
        assert "sink" in route.candidates

    def test_sink_excluded_when_disabled(self, fig1_scenario):
        plan = RandomPlanner(seed=1, include_sink=False).plan(fig1_scenario)
        route = next(iter(plan.routes.values()))
        assert "sink" not in route.candidates

    def test_seed_reproducibility(self, fig1_scenario):
        import itertools

        p1 = RandomPlanner(seed=5).plan(fig1_scenario)
        p2 = RandomPlanner(seed=5).plan(fig1_scenario)
        w1 = list(itertools.islice(p1.routes["m1"].waypoints(), 20))
        w2 = list(itertools.islice(p2.routes["m1"].waypoints(), 20))
        assert w1 == w2

    def test_mules_get_independent_streams(self, fig1_scenario):
        import itertools

        plan = RandomPlanner(seed=5).plan(fig1_scenario)
        w1 = list(itertools.islice(plan.routes["m1"].waypoints(), 30))
        w2 = list(itertools.islice(plan.routes["m2"].waypoints(), 30))
        assert w1 != w2

    def test_no_start_positions(self, fig1_scenario):
        plan = RandomPlanner(seed=0).plan(fig1_scenario)
        assert all(r.start_position() is None for r in plan.routes.values())


class TestSweepPartition:
    def _targets(self, n=12):
        sc = uniform_scenario(num_targets=n, num_mules=3, seed=2)
        return list(sc.targets), sc.field.center

    def test_partition_counts(self):
        targets, center = self._targets(12)
        groups = partition_targets_by_angle(targets, 3, center)
        assert len(groups) == 3
        assert sum(len(g) for g in groups) == 12

    def test_partition_disjoint(self):
        targets, center = self._targets(12)
        groups = partition_targets_by_angle(targets, 4, center)
        ids = [t.id for g in groups for t in g]
        assert len(ids) == len(set(ids))

    def test_balanced_partition_no_empty_groups(self):
        targets, center = self._targets(10)
        groups = partition_targets_balanced(targets, 5, center)
        assert all(groups)

    def test_more_groups_than_targets(self):
        targets, center = self._targets(3)
        groups = partition_targets_balanced(targets, 5, center)
        assert sum(len(g) for g in groups) == 3

    def test_invalid_group_count(self):
        targets, center = self._targets(5)
        with pytest.raises(ValueError):
            partition_targets_by_angle(targets, 0, center)


class TestSweepPlanner:
    def test_each_mule_gets_its_own_group_cycle(self, fig1_scenario):
        plan = SweepPlanner().plan(fig1_scenario)
        assert set(plan.routes) == {m.id for m in fig1_scenario.mules}
        loops = [tuple(r.loop) for r in plan.routes.values()]
        assert len(set(loops)) == len(loops)  # different groups -> different cycles

    def test_groups_cover_all_targets(self, fig1_scenario):
        plan = SweepPlanner().plan(fig1_scenario)
        covered = set()
        for info in plan.metadata["groups"]:
            covered.update(info["targets"])
        assert covered == {t.id for t in fig1_scenario.targets}

    def test_sink_included_in_every_group_cycle(self, fig1_scenario):
        plan = SweepPlanner().plan(fig1_scenario)
        assert all("sink" in r.loop for r in plan.routes.values())

    def test_sink_exclusion_option(self, fig1_scenario):
        plan = SweepPlanner(include_sink_in_groups=False).plan(fig1_scenario)
        assert any("sink" not in r.loop for r in plan.routes.values())

    def test_simulation_covers_all_targets(self, fig1_scenario):
        plan = SweepPlanner().plan(fig1_scenario)
        result = PatrolSimulator(fig1_scenario, plan, SimulationConfig(horizon=20_000)).run()
        assert set(result.visited_targets()) >= {t.id for t in fig1_scenario.targets}


class TestCHBPlanner:
    def test_shared_loop_no_start_positions(self, fig1_scenario):
        plan = CHBPlanner().plan(fig1_scenario)
        loops = {tuple(r.loop) for r in plan.routes.values()}
        assert len(loops) == 1
        assert all(isinstance(r, LoopRoute) for r in plan.routes.values())
        assert all(r.start_position() is None for r in plan.routes.values())

    def test_loop_is_same_as_btctp_circuit(self, fig1_scenario):
        from repro.core.btctp import plan_btctp

        chb = CHBPlanner().plan(fig1_scenario)
        btctp = plan_btctp(fig1_scenario)
        assert chb.metadata["path_length"] == pytest.approx(btctp.metadata["path_length"])

    def test_chb_has_higher_sd_than_btctp(self):
        sc = uniform_scenario(num_targets=15, num_mules=3, seed=6)
        from repro.core.btctp import plan_btctp

        chb_result = PatrolSimulator(sc.fresh_copy(), CHBPlanner().plan(sc),
                                     SimulationConfig(horizon=40_000)).run()
        tctp_result = PatrolSimulator(sc.fresh_copy(), plan_btctp(sc),
                                      SimulationConfig(horizon=40_000)).run()
        assert average_sd(tctp_result) == pytest.approx(0.0, abs=1e-6)
        assert average_sd(chb_result) > average_sd(tctp_result)

    def test_entry_at_nearest_node(self):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=8)
        # place a mule right next to a specific target: it should enter the loop there
        target = sc.targets[0]
        sc.mules[0].position = Point(target.position.x + 1.0, target.position.y)
        plan = CHBPlanner().plan(sc)
        route = plan.routes[sc.mules[0].id]
        assert route.loop[route.entry_index] == target.id
