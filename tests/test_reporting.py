"""Unit tests for repro.experiments.reporting (ASCII tables / CSV)."""

import math

from repro.experiments.reporting import format_series, format_table, print_report, to_csv


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.25]])
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "4.25" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [1000]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])  # fixed width rows

    def test_nan_and_none_rendering(self):
        text = format_table(["v"], [[float("nan")], [None]])
        assert "nan" in text
        assert "-" in text

    def test_precision(self):
        text = format_table(["v"], [[math.pi]], precision=4)
        assert "3.1416" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series_side_by_side(self):
        text = format_series({"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, x_label="t")
        assert "s1" in text and "s2" in text and "t" in text
        assert "4.00" in text

    def test_custom_x_values(self):
        text = format_series({"s": [1.0]}, x_values=["first"])
        assert "first" in text

    def test_unequal_lengths_padded(self):
        text = format_series({"long": [1.0, 2.0, 3.0], "short": [1.0]})
        assert "-" in text

    def test_empty_series(self):
        text = format_series({})
        assert "index" in text


class TestCsv:
    def test_round_trip_shape(self):
        csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert len(lines) == 3

    def test_floats_fixed_precision(self):
        csv = to_csv(["v"], [[1.23456789]])
        assert "1.234568" in csv


class TestPrintReport:
    def test_prints_text(self, capsys):
        print_report("hello table\n")
        assert capsys.readouterr().out == "hello table\n"

    def test_adds_trailing_newline(self, capsys):
        print_report("no newline")
        assert capsys.readouterr().out.endswith("\n")
