"""Unit tests for repro.graphs.improve (2-opt / Or-opt local search)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.graphs.improve import improve_tour, or_opt, two_opt
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_tour
from repro.planning import kernels


def _random_tour(n, seed):
    rng = np.random.default_rng(seed)
    coords = {f"g{i}": Point(float(x), float(y)) for i, (x, y) in enumerate(rng.uniform(0, 500, (n, 2)))}
    order = list(coords)
    rng.shuffle(order)
    return Tour(order, coords)


class TestTwoOpt:
    def test_never_lengthens(self):
        for seed in range(5):
            tour = _random_tour(25, seed)
            improved = two_opt(tour)
            assert improved.length() <= tour.length() + 1e-9

    def test_preserves_node_set(self):
        tour = _random_tour(20, 3)
        improved = two_opt(tour)
        validate_tour(improved, expected_nodes=list(tour.order))

    def test_fixes_crossing(self):
        # a deliberately crossed square: a-c-b-d crosses, optimum is the plain square
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100), "d": Point(0, 100)}
        crossed = Tour(["a", "c", "b", "d"], coords)
        improved = two_opt(crossed)
        assert improved.length() == pytest.approx(400.0)

    def test_small_tours_returned_unchanged(self):
        tour = _random_tour(3, 0)
        assert two_opt(tour) is tour

    def test_already_optimal_square_untouched_length(self):
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100), "d": Point(0, 100)}
        tour = Tour(["a", "b", "c", "d"], coords)
        assert two_opt(tour).length() == pytest.approx(400.0)


class TestOrOpt:
    def test_never_lengthens(self):
        for seed in range(5):
            tour = _random_tour(20, seed + 10)
            improved = or_opt(tour)
            assert improved.length() <= tour.length() + 1e-9

    def test_preserves_node_set(self):
        tour = _random_tour(15, 11)
        improved = or_opt(tour)
        validate_tour(improved, expected_nodes=list(tour.order))

    def test_relocates_outlier_segment(self):
        # g9 physically sits near g0/g1 but is visited in the middle of the far
        # end of the line; or-opt should relocate it next to its neighbours.
        coords = {f"g{i}": Point(i * 50.0, 0.0) for i in range(8)}
        coords["g9"] = Point(25.0, 10.0)
        bad_order = ["g0", "g1", "g2", "g3", "g9", "g4", "g5", "g6", "g7"]
        tour = Tour(bad_order, coords)
        improved = or_opt(tour)
        assert improved.length() < tour.length() - 100.0

    def test_tiny_tour_unchanged(self):
        tour = _random_tour(4, 1)
        assert or_opt(tour) is tour


class TestBoundarySizes:
    """n=4 and n=5, the smallest tours each pass actually optimizes."""

    def test_two_opt_n4_uncrosses_smallest_tour(self):
        # n=4 is the smallest tour 2-opt touches (n < 4 returns unchanged)
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100), "d": Point(0, 100)}
        crossed = Tour(["a", "c", "b", "d"], coords)
        assert two_opt(crossed).length() == pytest.approx(400.0)

    def test_two_opt_n4_scalar_and_vector_agree(self):
        for seed in range(10):
            tour = _random_tour(4, seed + 100)
            with kernels.vector_disabled():
                scalar = two_opt(tour)
            assert list(two_opt(tour).order) == list(scalar.order)

    def test_or_opt_n4_returned_unchanged(self):
        # n < 5 is below Or-opt's minimum: same object, both dispatch paths
        tour = _random_tour(4, 2)
        assert or_opt(tour) is tour
        with kernels.vector_disabled():
            assert or_opt(tour) is tour

    def test_or_opt_n5_relocates_on_smallest_tour(self):
        # n=5 is the smallest tour Or-opt touches: an outlier visited out of
        # line order must be relocated even at the boundary size
        coords = {f"g{i}": Point(i * 100.0, 0.0) for i in range(4)}
        coords["x"] = Point(50.0, 10.0)  # belongs between g0 and g1
        bad = Tour(["g0", "g1", "g2", "x", "g3"], coords)
        improved = or_opt(bad)
        assert improved.length() < bad.length() - 1e-6
        validate_tour(improved, expected_nodes=list(bad.order))

    def test_or_opt_n5_scalar_and_vector_agree(self):
        for seed in range(10):
            tour = _random_tour(5, seed + 200)
            with kernels.vector_disabled():
                scalar = or_opt(tour)
            assert list(or_opt(tour).order) == list(scalar.order)

    def test_segment_length_at_least_n_never_moves(self):
        # seg_len >= n means the segment contains its own neighbours: the
        # scalar loop skips every rotation, the kernel skips the whole pass
        tour = _random_tour(5, 3)
        with kernels.vector_disabled():
            scalar = or_opt(tour, segment_lengths=(5, 6))
        vector = or_opt(tour, segment_lengths=(5, 6))
        # no move is applied (the counterclockwise canonicalization may still
        # reorient the cycle, so compare by length, and byte-compare dispatch)
        assert scalar.length() == pytest.approx(tour.length())
        assert list(vector.order) == list(scalar.order)


class TestMaxRoundsExhaustion:
    def _hard_tour(self, n=30, seed=77):
        return _random_tour(n, seed)

    def test_two_opt_zero_rounds_is_identity_order(self):
        tour = self._hard_tour()
        for dispatch in (kernels.vector_disabled, None):
            if dispatch is None:
                result = two_opt(tour, max_rounds=0)
            else:
                with dispatch():
                    result = two_opt(tour, max_rounds=0)
            # the counterclockwise() canonicalization still applies, so
            # compare lengths: zero rounds may reorient but never improves
            assert result.length() == pytest.approx(tour.length())

    def test_two_opt_single_round_applies_exactly_one_move(self):
        tour = self._hard_tour()
        one = two_opt(tour, max_rounds=1)
        full = two_opt(tour)
        # a random 30-node permutation needs many moves: one round must stop
        # early (strictly worse than convergence) yet still improve
        assert one.length() < tour.length()
        assert full.length() < one.length()

    def test_two_opt_round_cap_is_monotone(self):
        tour = self._hard_tour()
        lengths = [two_opt(tour, max_rounds=k).length() for k in (1, 2, 4, 8, 50)]
        assert all(b <= a + 1e-9 for a, b in zip(lengths, lengths[1:]))

    def test_two_opt_exhaustion_identical_across_dispatch(self):
        tour = self._hard_tour()
        for rounds in (1, 2, 3, 7):
            with kernels.vector_disabled():
                scalar = two_opt(tour, max_rounds=rounds)
            assert list(two_opt(tour, max_rounds=rounds).order) == list(scalar.order)

    def test_or_opt_zero_rounds_never_moves(self):
        tour = self._hard_tour(20, 78)
        assert or_opt(tour, max_rounds=0).length() == pytest.approx(tour.length())

    def test_or_opt_exhaustion_identical_across_dispatch(self):
        coords = {f"g{i}": Point(i * 50.0, 0.0) for i in range(8)}
        coords["g9"] = Point(25.0, 10.0)
        tour = Tour(["g0", "g1", "g2", "g3", "g9", "g4", "g5", "g6", "g7"], coords)
        for rounds in (0, 1, 2, 30):
            with kernels.vector_disabled():
                scalar = or_opt(tour, max_rounds=rounds)
            assert list(or_opt(tour, max_rounds=rounds).order) == list(scalar.order)


class TestImproveTour:
    def test_never_lengthens(self):
        tour = _random_tour(30, 42)
        improved = improve_tour(tour)
        assert improved.length() <= tour.length() + 1e-9

    def test_without_or_opt(self):
        tour = _random_tour(30, 43)
        improved = improve_tour(tour, use_or_opt=False)
        assert improved.length() <= tour.length() + 1e-9

    def test_beats_random_order_substantially(self):
        tour = _random_tour(40, 44)
        improved = improve_tour(tour)
        # local search should shave a meaningful fraction off a random permutation
        assert improved.length() < 0.9 * tour.length()
