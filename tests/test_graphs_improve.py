"""Unit tests for repro.graphs.improve (2-opt / Or-opt local search)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.graphs.improve import improve_tour, or_opt, two_opt
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_tour


def _random_tour(n, seed):
    rng = np.random.default_rng(seed)
    coords = {f"g{i}": Point(float(x), float(y)) for i, (x, y) in enumerate(rng.uniform(0, 500, (n, 2)))}
    order = list(coords)
    rng.shuffle(order)
    return Tour(order, coords)


class TestTwoOpt:
    def test_never_lengthens(self):
        for seed in range(5):
            tour = _random_tour(25, seed)
            improved = two_opt(tour)
            assert improved.length() <= tour.length() + 1e-9

    def test_preserves_node_set(self):
        tour = _random_tour(20, 3)
        improved = two_opt(tour)
        validate_tour(improved, expected_nodes=list(tour.order))

    def test_fixes_crossing(self):
        # a deliberately crossed square: a-c-b-d crosses, optimum is the plain square
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100), "d": Point(0, 100)}
        crossed = Tour(["a", "c", "b", "d"], coords)
        improved = two_opt(crossed)
        assert improved.length() == pytest.approx(400.0)

    def test_small_tours_returned_unchanged(self):
        tour = _random_tour(3, 0)
        assert two_opt(tour) is tour

    def test_already_optimal_square_untouched_length(self):
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100), "d": Point(0, 100)}
        tour = Tour(["a", "b", "c", "d"], coords)
        assert two_opt(tour).length() == pytest.approx(400.0)


class TestOrOpt:
    def test_never_lengthens(self):
        for seed in range(5):
            tour = _random_tour(20, seed + 10)
            improved = or_opt(tour)
            assert improved.length() <= tour.length() + 1e-9

    def test_preserves_node_set(self):
        tour = _random_tour(15, 11)
        improved = or_opt(tour)
        validate_tour(improved, expected_nodes=list(tour.order))

    def test_relocates_outlier_segment(self):
        # g9 physically sits near g0/g1 but is visited in the middle of the far
        # end of the line; or-opt should relocate it next to its neighbours.
        coords = {f"g{i}": Point(i * 50.0, 0.0) for i in range(8)}
        coords["g9"] = Point(25.0, 10.0)
        bad_order = ["g0", "g1", "g2", "g3", "g9", "g4", "g5", "g6", "g7"]
        tour = Tour(bad_order, coords)
        improved = or_opt(tour)
        assert improved.length() < tour.length() - 100.0

    def test_tiny_tour_unchanged(self):
        tour = _random_tour(4, 1)
        assert or_opt(tour) is tour


class TestImproveTour:
    def test_never_lengthens(self):
        tour = _random_tour(30, 42)
        improved = improve_tour(tour)
        assert improved.length() <= tour.length() + 1e-9

    def test_without_or_opt(self):
        tour = _random_tour(30, 43)
        improved = improve_tour(tour, use_or_opt=False)
        assert improved.length() <= tour.length() + 1e-9

    def test_beats_random_order_substantially(self):
        tour = _random_tour(40, 44)
        improved = improve_tour(tour)
        # local search should shave a meaningful fraction off a random permutation
        assert improved.length() < 0.9 * tour.length()
