"""Equivalence tests for the analytic fast-path simulator.

The fast path must be an *invisible* optimisation: for every eligible run it
has to reproduce the discrete-event loop byte for byte — visits, deliveries,
traces, metadata and final mule state — and for every ineligible run it must
get out of the way.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.baselines.base import get_strategy
from repro.core.plan import LoopRoute, PatrolPlan
from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.scenarios import ScenarioSpec
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.fastpath import fast_path_eligible, fast_path_rejection, run_fast_path

FAST = SimulationConfig(horizon=15_000.0, track_energy=False)
SLOW = dataclasses.replace(FAST, fast_path=False)


def _run_both(strategy: str, scenario_spec: ScenarioSpec, seed: int, *,
              fast_cfg: SimulationConfig = FAST, slow_cfg: SimulationConfig = SLOW,
              **params):
    """One strategy on one scenario through both engines, on separate scenario copies."""
    results = []
    for cfg in (fast_cfg, slow_cfg):
        scenario = scenario_spec.build(seed)
        plan = get_strategy(strategy, **params).plan(scenario)
        results.append((PatrolSimulator(scenario, plan, cfg).run(), scenario))
    return results


EQUIVALENCE_CASES = [
    ("b-tctp", ScenarioSpec("uniform", {"num_targets": 12, "num_mules": 3}), {}),
    ("b-tctp", ScenarioSpec("figure1", {}), {}),
    ("b-tctp", ScenarioSpec("grid", {}), {}),
    ("chb", ScenarioSpec("uniform", {"num_targets": 14, "num_mules": 4}), {}),
    ("sweep", ScenarioSpec("clustered", {"num_targets": 15, "num_mules": 4}), {}),
    ("w-tctp", ScenarioSpec("ring", {"num_targets": 14, "num_mules": 3, "num_vips": 2}), {}),
    ("w-tctp", ScenarioSpec("single-vip", {}), {"policy": "shortest"}),
]


class TestByteIdenticalResults:
    @pytest.mark.parametrize("strategy,scenario_spec,params", EQUIVALENCE_CASES,
                             ids=[f"{s}-{spec.family}" for s, spec, _ in EQUIVALENCE_CASES])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_full_result_equality(self, strategy, scenario_spec, params, seed):
        (fast, scen_fast), (slow, scen_slow) = _run_both(
            strategy, scenario_spec, seed, **params
        )
        assert fast == slow
        assert len(fast.visits) > 0

    @pytest.mark.parametrize("strategy,scenario_spec,params", EQUIVALENCE_CASES[:3],
                             ids=[f"{s}-{spec.family}" for s, spec, _ in EQUIVALENCE_CASES[:3]])
    def test_final_mule_state_matches(self, strategy, scenario_spec, params):
        (fast, scen_fast), (slow, scen_slow) = _run_both(strategy, scenario_spec, 1, **params)
        for mf, ms in zip(scen_fast.mules, scen_slow.mules):
            assert mf.position == ms.position
            assert mf.state == ms.state
            assert [p.size for p in mf.buffer.packets] == [p.size for p in ms.buffer.packets]

    def test_unsynchronized_start_equivalence(self):
        cfg_fast = dataclasses.replace(FAST, synchronized_start=False)
        cfg_slow = dataclasses.replace(SLOW, synchronized_start=False)
        (fast, _), (slow, _) = _run_both(
            "b-tctp", ScenarioSpec("uniform", {"num_targets": 10, "num_mules": 3}), 2,
            fast_cfg=cfg_fast, slow_cfg=cfg_slow,
        )
        assert fast == slow

    def test_horizon_cut_equivalence(self):
        # A short horizon cuts mid-initialisation for some mules.
        for horizon in (120.0, 500.0, 2_000.0):
            cfg_fast = dataclasses.replace(FAST, horizon=horizon)
            cfg_slow = dataclasses.replace(SLOW, horizon=horizon)
            (fast, _), (slow, _) = _run_both(
                "b-tctp", ScenarioSpec("uniform", {"num_targets": 12, "num_mules": 3}), 0,
                fast_cfg=cfg_fast, slow_cfg=cfg_slow,
            )
            assert fast == slow, f"divergence at horizon={horizon}"

    def test_halting_single_node_loop(self):
        """A one-node loop halts the mule after a single visit in both engines."""
        scenario = ScenarioSpec("uniform", {"num_targets": 3, "num_mules": 1}).build(0)
        target = scenario.targets[0]
        coords = {target.id: target.position}
        for cfg in (FAST, SLOW):
            scen = scenario.fresh_copy()
            routes = {
                m.id: LoopRoute(m.id, [target.id], coords) for m in scen.mules
            }
            plan = PatrolPlan(strategy="degenerate", routes=routes)
            result = PatrolSimulator(scen, plan, cfg).run()
            assert len(result.visits) == 1
            assert result.visits[0].node_id == target.id


class TestEligibility:
    def _sim(self, *, scenario_spec=None, strategy="b-tctp", cfg=FAST, seed=0, **params):
        scenario_spec = scenario_spec or ScenarioSpec(
            "uniform", {"num_targets": 8, "num_mules": 2}
        )
        scenario = scenario_spec.build(seed)
        plan = get_strategy(strategy, **params).plan(scenario)
        return PatrolSimulator(scenario, plan, cfg)

    def test_loop_routes_are_eligible(self):
        assert fast_path_eligible(self._sim())

    def test_flag_disables(self):
        sim = self._sim(cfg=SLOW)
        assert not fast_path_eligible(sim)
        assert fast_path_rejection(sim) == "fast-path-disabled"

    def test_max_visits_is_eligible(self):
        cfg = dataclasses.replace(FAST, max_visits=10)
        sim = self._sim(cfg=cfg)
        assert fast_path_eligible(sim)
        assert run_fast_path(sim) is not None

    def test_tracked_battery_is_eligible(self):
        spec = ScenarioSpec("uniform", {"num_targets": 8, "num_mules": 2,
                                        "mule_battery": 50_000.0})
        cfg = dataclasses.replace(FAST, track_energy=True)
        sim = self._sim(scenario_spec=spec, cfg=cfg)
        assert fast_path_eligible(sim)
        assert run_fast_path(sim) is not None

    def test_untracked_battery_is_eligible(self):
        spec = ScenarioSpec("uniform", {"num_targets": 8, "num_mules": 2,
                                        "mule_battery": 50_000.0})
        assert fast_path_eligible(self._sim(scenario_spec=spec))

    def test_stochastic_route_falls_back(self):
        sim = self._sim(strategy="random", seed=1)
        assert not fast_path_eligible(sim)
        assert fast_path_rejection(sim) == "route-class"

    def test_alternating_route_is_eligible(self):
        spec = ScenarioSpec(
            "uniform",
            {"num_targets": 8, "num_mules": 2, "mule_battery": 200_000.0,
             "with_recharge_station": True},
        )
        cfg = dataclasses.replace(FAST, track_energy=True)
        sim = self._sim(scenario_spec=spec, strategy="rw-tctp", cfg=cfg)
        assert fast_path_eligible(sim)
        assert run_fast_path(sim) is not None

    def test_dwell_time_is_eligible(self):
        spec = ScenarioSpec("uniform", {"num_targets": 8, "num_mules": 2,
                                        "params": {"collection_time": 5.0}})
        sim = self._sim(scenario_spec=spec)
        assert fast_path_eligible(sim)
        assert run_fast_path(sim) is not None

    def test_preloaded_buffer_falls_back(self):
        from repro.network.datamodel import DataPacket

        sim = self._sim()
        sim.scenario.mules[0].buffer.add(
            DataPacket(target_id="t0", generated_from=0.0, generated_to=1.0,
                       collected_at=1.0, size=1.0)
        )
        assert not fast_path_eligible(sim)
        assert fast_path_rejection(sim) == "preloaded-buffer"


class TestCampaignEquivalence:
    def test_records_byte_identical_fast_vs_slow(self):
        def spec(fast: bool) -> CampaignSpec:
            return CampaignSpec(
                base=RunSpec(
                    strategy="b-tctp",
                    scenario=ScenarioSpec("uniform", {"num_targets": 10, "num_mules": 3}),
                    sim=SimulationConfig(horizon=10_000.0, track_energy=False,
                                         fast_path=fast),
                    seed=1,
                ),
                grid={"strategy": ["chb", "b-tctp", "sweep", "random"]},
                replications=2,
            )

        fast = Campaign(spec(True)).run().records
        slow = Campaign(spec(False)).run().records
        assert json.dumps(fast, sort_keys=True) == json.dumps(slow, sort_keys=True)

    def test_fast_path_round_trips_through_spec_json(self):
        spec = RunSpec(strategy="b-tctp",
                       sim=SimulationConfig(horizon=5_000.0, fast_path=False))
        loaded = RunSpec.from_json(spec.to_json())
        assert loaded.sim.fast_path is False
        assert "fast_path" not in json.loads(RunSpec(strategy="b-tctp").to_json()).get("sim", {})
