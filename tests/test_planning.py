"""Tests of the composable planning pipeline (:mod:`repro.planning`)."""

import json

import pytest

from repro.baselines.base import (
    available_strategies,
    get_strategy,
    strategy_info,
    strategy_params,
    validate_strategy_params,
)
from repro.core.plan import AlternatingLoopRoute, LoopRoute, StochasticRoute
from repro.planning import (
    STAGE_KINDS,
    PipelineSpec,
    PlanningPipeline,
    StageSpec,
    available_stage_backends,
    canonical_stage_backend,
    register_stage,
    stage_backend_info,
    validate_stage_params,
)
from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.scenarios import ScenarioSpec, get_scenario
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.fastpath import fast_path_eligible


@pytest.fixture(scope="module")
def scenario():
    return get_scenario("uniform", num_targets=12, num_mules=3,
                        num_vips=2, vip_weight=3, seed=4)


@pytest.fixture(scope="module")
def recharge_scenario():
    return get_scenario("uniform", num_targets=10, num_mules=2, num_vips=1,
                        vip_weight=3, mule_battery=200_000.0,
                        with_recharge_station=True, seed=2)


# --------------------------------------------------------------------------- #
# Stage registry
# --------------------------------------------------------------------------- #

class TestStageRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_stage_backends("tour")) == {
            "hamiltonian", "sweep-sector", "cluster-first", "pool"}
        assert set(available_stage_backends("augment")) == {"none", "wpp", "recharge"}
        assert set(available_stage_backends("order")) == {
            "as-built", "ccw-angle", "reversed", "stochastic"}
        assert set(available_stage_backends("init")) == {
            "equal-spacing", "depot-start", "random-offset"}

    def test_aliases_resolve(self):
        assert canonical_stage_backend("init", "nearest") == "depot-start"
        assert canonical_stage_backend("order", "CCW") == "ccw-angle"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            available_stage_backends("tours")

    def test_unknown_backend_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'hamiltonian'"):
            canonical_stage_backend("tour", "hamiltonain")

    def test_param_table_derived_from_signature(self):
        info = stage_backend_info("tour", "hamiltonian")
        assert set(info.params) == {"tsp_method", "improve_tour"}
        assert info.params["tsp_method"].default == "hull-insertion"

    def test_validate_stage_params_unknown_param(self):
        with pytest.raises(ValueError, match="does not accept"):
            validate_stage_params("tour", "hamiltonian", {"tsp_methd": "x"})

    def test_validate_stage_params_bad_value(self):
        with pytest.raises(ValueError, match="did you mean 'nearest-neighbor'"):
            validate_stage_params("tour", "hamiltonian", {"tsp_method": "nearest-neighbour"})
        with pytest.raises(ValueError, match="num_clusters"):
            validate_stage_params("tour", "cluster-first", {"num_clusters": 0})
        with pytest.raises(ValueError, match="vip_weight"):
            validate_stage_params("augment", "recharge", {"vip_weight": -1})

    def test_custom_backend_registration(self, scenario):
        @register_stage("order", "zigzag-test", description="test backend")
        def order_zigzag(ctx):
            for lane in ctx.lanes:
                loop = list(lane.tour.order)
                lane.loop = loop
                lane.walk = loop + loop[:1]
                lane.coords = lane.tour.coordinates

        try:
            spec = PipelineSpec(order="zigzag-test", init="depot-start")
            plan = PlanningPipeline(spec.validate(), name="zigzag").plan(scenario.fresh_copy())
            assert plan.strategy == "zigzag"
        finally:
            from repro.planning import stages as stages_mod
            stages_mod._REGISTRY["order"].pop("zigzag-test")
            stages_mod._ALIASES["order"].pop("zigzag-test")

    def test_kwargs_backends_rejected(self):
        with pytest.raises(TypeError, match="explicit keyword-only"):
            register_stage("order", "catchall-test")(lambda ctx, **kw: None)


# --------------------------------------------------------------------------- #
# StageSpec / PipelineSpec
# --------------------------------------------------------------------------- #

class TestSpecs:
    def test_stage_spec_coercions_equivalent(self):
        a = StageSpec.coerce("wpp:policy=shortest")
        b = StageSpec.coerce({"name": "wpp", "params": {"policy": "shortest"}})
        c = StageSpec("wpp", {"policy": "shortest"})
        assert a == b == c

    def test_none_coerces_to_the_none_backend(self):
        # CLI-style parsers turn the literal string "none" into Python None
        # before coercion; the no-op augment backend is legitimately "none".
        assert StageSpec.coerce(None) == StageSpec("none")
        planner = get_strategy("pipeline", augment=None)
        assert planner.spec.augment.name == "none"

    def test_stage_spec_parses_typed_values(self):
        spec = StageSpec.coerce("cluster-first:num_clusters=4")
        assert spec.params == {"num_clusters": 4}
        assert StageSpec.coerce("x:flag=true").params == {"flag": True}
        assert StageSpec.coerce("x:seed=none").params == {"seed": None}

    def test_stage_spec_bad_spellings(self):
        with pytest.raises(ValueError, match="backend name"):
            StageSpec.coerce(":policy=shortest")
        with pytest.raises(ValueError, match="key=value"):
            StageSpec.coerce("wpp:policy")
        with pytest.raises(TypeError):
            StageSpec.coerce(42)

    def test_pipeline_spec_json_round_trip(self):
        spec = PipelineSpec(
            tour=StageSpec("cluster-first", {"num_clusters": 3}),
            augment="wpp:policy=shortest",
            order="ccw-angle",
            init="equal-spacing",
        )
        again = PipelineSpec.from_json(spec.to_json())
        assert again == spec
        assert json.loads(spec.to_json())["order"] == "ccw-angle"  # compact form

    def test_pipeline_spec_unknown_stage_key(self):
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            PipelineSpec.from_dict({"tours": "hamiltonian"})

    def test_validate_rejects_incompatible_combinations(self):
        with pytest.raises(ValueError, match="cannot traverse a weighted structure"):
            PipelineSpec(augment="wpp", order="as-built").validate()
        with pytest.raises(ValueError, match="cannot traverse a weighted structure"):
            PipelineSpec(augment="wpp", order="stochastic", init="depot-start").validate()
        with pytest.raises(ValueError, match="depot-start"):
            PipelineSpec(tour="pool", order="stochastic", init="equal-spacing").validate()

    def test_validate_suggests_on_stage_typo(self):
        with pytest.raises(ValueError, match="did you mean 'equal-spacing'"):
            PipelineSpec(init="equal-spacin").validate()

    def test_compact_rendering(self):
        spec = PipelineSpec(augment="wpp:policy=shortest")
        assert spec.compact() == (
            'hamiltonian | wpp:policy="shortest" | as-built | equal-spacing'
        )


# --------------------------------------------------------------------------- #
# Cross-combined strategies
# --------------------------------------------------------------------------- #

NEW_STRATEGIES = ("sw-tctp", "cb-tctp", "crw-tctp", "b-tctp-cw", "staggered-chb")


class TestNewCompositions:
    def test_registered_and_listed(self):
        names = set(available_strategies(include_aliases=False))
        assert set(NEW_STRATEGIES) <= names
        assert "pipeline" in names

    def test_compositions_declared(self):
        for name in NEW_STRATEGIES + ("pipeline", "b-tctp", "random"):
            assert strategy_info(name).composition is not None

    @pytest.mark.parametrize("name", [n for n in NEW_STRATEGIES if n != "crw-tctp"])
    def test_plans_loop_routes(self, scenario, name):
        plan = get_strategy(name).plan(scenario.fresh_copy())
        assert set(plan.mule_ids) == {m.id for m in scenario.mules}
        assert all(type(r) is LoopRoute for r in plan.routes.values())

    def test_crw_tctp_alternating_routes(self, recharge_scenario):
        plan = get_strategy("crw-tctp").plan(recharge_scenario.fresh_copy())
        assert all(isinstance(r, AlternatingLoopRoute) for r in plan.routes.values())
        assert plan.strategy == "CRW-TCTP[balanced]"
        assert plan.metadata["patrol_rounds"] >= 1

    def test_crw_tctp_requires_recharge_station(self, scenario):
        with pytest.raises(ValueError, match="recharge station"):
            get_strategy("crw-tctp").plan(scenario.fresh_copy())

    def test_sw_tctp_expands_vips_per_sector(self, scenario):
        plan = get_strategy("sw-tctp").plan(scenario.fresh_copy())
        vip_visits = {t.id: 0 for t in scenario.vips()}
        for route in plan.routes.values():
            for node in route.loop:
                if node in vip_visits:
                    vip_visits[node] += 1
        weights = {t.id: t.weight for t in scenario.vips()}
        # each VIP sits in exactly one sector and appears weight times per lap there
        assert vip_visits == weights

    def test_b_tctp_cw_reverses_direction(self, scenario):
        forward = get_strategy("b-tctp").plan(scenario.fresh_copy())
        backward = get_strategy("b-tctp-cw").plan(scenario.fresh_copy())
        f_loop = next(iter(forward.routes.values())).loop
        b_loop = next(iter(backward.routes.values())).loop
        assert b_loop == [f_loop[0]] + f_loop[:0:-1]

    def test_staggered_chb_deterministic_per_seed(self, scenario):
        a = get_strategy("staggered-chb", seed=5).plan(scenario.fresh_copy())
        b = get_strategy("staggered-chb", seed=5).plan(scenario.fresh_copy())
        c = get_strategy("staggered-chb", seed=6).plan(scenario.fresh_copy())
        def starts(p):
            return [p.routes[m].start_position().as_tuple() for m in p.mule_ids]
        assert starts(a) == starts(b)
        assert starts(a) != starts(c)

    def test_cluster_first_visits_every_target_once(self, scenario):
        plan = get_strategy("cb-tctp", num_clusters=3).plan(scenario.fresh_copy())
        loop = next(iter(plan.routes.values())).loop
        expected = {t.id for t in scenario.targets} | {scenario.sink.id}
        assert sorted(loop) == sorted(expected)

    @pytest.mark.parametrize("name", [n for n in NEW_STRATEGIES if n != "crw-tctp"])
    def test_fastpath_eligible_and_identical(self, scenario, name):
        """Composed loop-route strategies ride the analytic fast path, byte-identically."""
        cfg_fast = SimulationConfig(horizon=15_000.0)
        cfg_slow = SimulationConfig(horizon=15_000.0, fast_path=False)
        s1 = scenario.fresh_copy()
        sim = PatrolSimulator(s1, get_strategy(name).plan(s1), cfg_fast)
        assert fast_path_eligible(sim)
        fast = sim.run()
        s2 = scenario.fresh_copy()
        slow = PatrolSimulator(s2, get_strategy(name).plan(s2), cfg_slow).run()
        assert [(v.time, v.node_id, v.mule_id) for v in fast.visits] == \
               [(v.time, v.node_id, v.mule_id) for v in slow.visits]
        assert fast.total_delivered_data() == slow.total_delivered_data()

    def test_crw_tctp_rides_the_fast_path(self, recharge_scenario):
        """Alternating routes are fast-path eligible (patrol×rounds + recharge lap)."""
        cfg_fast = SimulationConfig(horizon=10_000.0)
        cfg_slow = SimulationConfig(horizon=10_000.0, fast_path=False)
        s1 = recharge_scenario.fresh_copy()
        sim = PatrolSimulator(s1, get_strategy("crw-tctp").plan(s1), cfg_fast)
        assert fast_path_eligible(sim)
        fast = sim.run()
        s2 = recharge_scenario.fresh_copy()
        slow = PatrolSimulator(s2, get_strategy("crw-tctp").plan(s2), cfg_slow).run()
        assert [(v.time, v.node_id, v.mule_id) for v in fast.visits] == \
               [(v.time, v.node_id, v.mule_id) for v in slow.visits]
        assert fast.total_delivered_data() == slow.total_delivered_data()


# --------------------------------------------------------------------------- #
# The generic pipeline strategy + campaign integration
# --------------------------------------------------------------------------- #

class TestPipelineStrategy:
    def test_declares_the_four_stages(self):
        assert strategy_params("pipeline") == {"tour", "augment", "order", "init"}

    def test_compact_string_params(self, scenario):
        planner = get_strategy(
            "pipeline", tour="cluster-first:num_clusters=2",
            augment="wpp:policy=shortest", order="ccw-angle", init="depot-start",
        )
        plan = planner.plan(scenario.fresh_copy())
        assert plan.strategy == "Pipeline[cluster-first|wpp|ccw-angle|depot-start]"
        assert plan.metadata["pipeline"]["augment"]["params"] == {"policy": "shortest"}

    def test_invalid_composition_rejected_at_construction(self):
        with pytest.raises(ValueError, match="cannot traverse"):
            get_strategy("pipeline", augment="wpp", order="as-built")

    def test_plan_axes_sweep(self):
        base = RunSpec(
            strategy="pipeline",
            scenario=ScenarioSpec("uniform", {"num_targets": 8, "num_mules": 2}),
            sim=SimulationConfig(horizon=6000.0),
        )
        spec = CampaignSpec(base=base, grid={
            "plan.tour": ["hamiltonian", "cluster-first"],
            "plan.order": ["as-built", "reversed"],
        }, replications=1)
        cells = spec.cells()
        assert len(cells) == 4
        assert [c.params["tour"] for c in cells] == [
            "hamiltonian", "hamiltonian", "cluster-first", "cluster-first"]
        records = Campaign(spec).run().records
        assert len(records) == 4
        assert {r["plan.tour"] for r in records} == {"hamiltonian", "cluster-first"}

    def test_plan_axis_typo_fails_before_simulation(self):
        base = RunSpec(strategy="pipeline")
        with pytest.raises(ValueError, match="did you mean 'hamiltonian'"):
            CampaignSpec(base=base, grid={"plan.tour": ["hamiltonain"]}).cells()

    def test_plan_axis_unknown_stage_kind(self):
        base = RunSpec(strategy="pipeline")
        with pytest.raises(ValueError, match="must name a pipeline stage"):
            CampaignSpec(base=base, grid={"plan.tours": ["hamiltonian"]}).cells()

    def test_plan_axis_on_non_pipeline_strategy(self):
        base = RunSpec(strategy="b-tctp")
        with pytest.raises(ValueError, match="'pipeline' strategy"):
            CampaignSpec(base=base, grid={"plan.order": ["reversed"]}).cells()

    def test_new_strategies_sweep_as_grid_axis(self):
        base = RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 8, "num_mules": 2}),
            sim=SimulationConfig(horizon=6000.0),
        )
        spec = CampaignSpec(base=base, grid={
            "strategy": ["b-tctp", "cb-tctp", "staggered-chb"]}, replications=2)
        records = Campaign(spec).run().records
        assert len(records) == 6
        assert {r["planner"] for r in records} == {"B-TCTP", "CB-TCTP", "Staggered-CHB"}

    def test_run_spec_json_round_trip_with_stage_params(self):
        spec = RunSpec(strategy="pipeline",
                       params={"tour": "cluster-first", "order": "reversed"})
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        again.validate()


# --------------------------------------------------------------------------- #
# Pre-run validation of strategy params (campaign symmetric to scenarios)
# --------------------------------------------------------------------------- #

class TestStrategyParamValidation:
    def test_bad_policy_fails_at_cells(self):
        base = RunSpec(strategy="w-tctp", params={"policy": "balancedd"})
        with pytest.raises(ValueError, match="did you mean 'balanced'"):
            CampaignSpec(base=base).cells()

    def test_bad_tsp_method_fails_at_cells(self):
        base = RunSpec(strategy="b-tctp", params={"tsp_method": "christofide"})
        with pytest.raises(ValueError, match="did you mean 'christofides'"):
            CampaignSpec(base=base).cells()

    def test_bad_grid_value_fails_at_cells(self):
        base = RunSpec(strategy="w-tctp")
        spec = CampaignSpec(base=base, grid={"policy": ["shortest", "shorttest"]})
        with pytest.raises(ValueError, match="did you mean 'shortest'"):
            spec.cells()

    def test_validator_only_sees_declared_subset(self):
        # shared params fan out: sweep does not declare policy, so the policy
        # value must not break validation of sweep cells
        base = RunSpec(strategy="b-tctp", params={"policy": "shortest"})
        spec = CampaignSpec(base=base, grid={"strategy": ["w-tctp", "sweep"]})
        assert len(spec.cells()) == 2

    def test_run_spec_validate_uses_validator(self):
        with pytest.raises(ValueError, match="did you mean"):
            RunSpec(strategy="rw-tctp", params={"policy": "ballanced"}).validate()

    def test_validate_strategy_params_unknown_strategy_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'b-tctp'"):
            validate_strategy_params("b-tcpt", {})

    def test_out_of_range_vip_weight(self):
        with pytest.raises(ValueError, match="vip_weight"):
            validate_strategy_params("rw-tctp", {"vip_weight": 0})

    def test_get_strategy_runs_the_validator(self):
        # the same pre-build rejection campaigns get, on the direct API path
        with pytest.raises(ValueError, match="num_clusters"):
            get_strategy("cb-tctp", num_clusters=0)
        with pytest.raises(ValueError, match="did you mean 'balanced'"):
            get_strategy("w-tctp", policy="balancedd")

    def test_cluster_first_rejects_nonpositive_cluster_count(self, scenario):
        from repro.planning.compositions import cb_tctp_pipeline
        pipe = cb_tctp_pipeline()
        spec = pipe.spec.with_stage("tour", StageSpec("cluster-first", {"num_clusters": 0}))
        with pytest.raises(ValueError, match="num_clusters"):
            PlanningPipeline(spec, name="x").plan(scenario.fresh_copy())

    def test_valid_params_pass(self):
        validate_strategy_params("w-tctp", {"policy": "shortest", "tsp_method": "christofides"})
        validate_strategy_params("random", {"seed": 3, "avoid_repeat": False})
        validate_strategy_params("pipeline", {"tour": "pool", "order": "stochastic",
                                              "init": "depot-start"})


# --------------------------------------------------------------------------- #
# Legacy planners expose their compositions
# --------------------------------------------------------------------------- #

class TestLegacyDelegation:
    def test_planner_pipeline_accessors(self, scenario):
        from repro.core.btctp import BTCTPPlanner
        pipe = BTCTPPlanner(location_initialization=False).pipeline()
        assert isinstance(pipe, PlanningPipeline)
        assert pipe.spec.init.name == "depot-start"
        plan_a = pipe.plan(scenario.fresh_copy())
        plan_b = BTCTPPlanner(location_initialization=False).plan(scenario.fresh_copy())
        assert plan_a.metadata == plan_b.metadata

    def test_random_stochastic_routes(self, scenario):
        plan = get_strategy("random", seed=9).plan(scenario.fresh_copy())
        assert all(isinstance(r, StochasticRoute) for r in plan.routes.values())
        assert plan.metadata == {"seed": 9, "candidates": scenario.num_targets + 1}

    def test_stage_kinds_constant(self):
        assert STAGE_KINDS == ("tour", "augment", "order", "init")
