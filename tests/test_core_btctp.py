"""Unit tests for repro.core.btctp (Section II algorithm)."""

import pytest

from repro.core.btctp import BTCTPPlanner, expected_visiting_interval, plan_btctp
from repro.core.plan import LoopRoute
from repro.geometry.point import distance
from repro.graphs.validation import validate_tour
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_sd, per_target_intervals


class TestExpectedVisitingInterval:
    def test_formula(self):
        assert expected_visiting_interval(4000.0, 4, 2.0) == pytest.approx(500.0)

    def test_single_mule(self):
        assert expected_visiting_interval(1000.0, 1, 2.0) == pytest.approx(500.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_visiting_interval(100.0, 0, 2.0)
        with pytest.raises(ValueError):
            expected_visiting_interval(100.0, 2, 0.0)


class TestCircuitConstruction:
    def test_circuit_covers_targets_and_sink(self, simple_scenario):
        tour = BTCTPPlanner().build_circuit(simple_scenario)
        validate_tour(tour, expected_nodes=["g1", "g2", "g3", "g4", "sink"])

    def test_circuit_starts_at_sink(self, simple_scenario):
        tour = BTCTPPlanner().build_circuit(simple_scenario)
        assert tour.order[0] == "sink"

    def test_all_mules_would_build_the_same_circuit(self, fig1_scenario):
        t1 = BTCTPPlanner().build_circuit(fig1_scenario)
        t2 = BTCTPPlanner().build_circuit(fig1_scenario)
        assert t1.order == t2.order


class TestPlan:
    def test_one_route_per_mule(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        assert set(plan.routes) == {m.id for m in fig1_scenario.mules}

    def test_routes_are_loop_routes_over_same_loop(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        loops = {tuple(r.loop) for r in plan.routes.values()}
        assert len(loops) == 1
        assert all(isinstance(r, LoopRoute) for r in plan.routes.values())

    def test_metadata_contains_expected_interval(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        expected = expected_visiting_interval(
            plan.metadata["path_length"], fig1_scenario.num_mules,
            fig1_scenario.params.mule_velocity
        )
        assert plan.metadata["expected_visiting_interval"] == pytest.approx(expected)

    def test_start_positions_present_with_initialization(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        assert all(r.start_position() is not None for r in plan.routes.values())

    def test_start_positions_absent_without_initialization(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario, location_initialization=False)
        assert all(r.start_position() is None for r in plan.routes.values())

    def test_start_positions_equally_spaced(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        sps = plan.metadata["start_points"]
        arcs = sorted(sp["arc"] for sp in sps)
        path_len = plan.metadata["path_length"]
        gaps = [b - a for a, b in zip(arcs, arcs[1:])] + [path_len - (arcs[-1] - arcs[0])]
        expected_gap = path_len / len(sps)
        assert all(g == pytest.approx(expected_gap, rel=1e-6) for g in gaps)

    def test_distinct_start_points_per_mule(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        starts = [r.start_position() for r in plan.routes.values()]
        for i in range(len(starts)):
            for j in range(i + 1, len(starts)):
                assert distance(starts[i], starts[j]) > 1e-6

    def test_alternative_tsp_methods(self, fig1_scenario):
        for method in ("nearest-neighbor", "christofides"):
            plan = plan_btctp(fig1_scenario, tsp_method=method)
            assert plan.metadata["path_length"] > 0


class TestSimulatedBehaviour:
    """End-to-end properties the paper claims for B-TCTP (Figures 7 and 8)."""

    def test_zero_sd_of_visiting_intervals(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        result = PatrolSimulator(fig1_scenario, plan, SimulationConfig(horizon=30_000)).run()
        assert average_sd(result) == pytest.approx(0.0, abs=1e-6)

    def test_intervals_match_closed_form(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        result = PatrolSimulator(fig1_scenario, plan, SimulationConfig(horizon=30_000)).run()
        expected = plan.metadata["expected_visiting_interval"]
        intervals = per_target_intervals(result)
        for target, ivs in intervals.items():
            assert len(ivs) >= 2, f"{target} visited too few times"
            for iv in ivs:
                assert iv == pytest.approx(expected, rel=1e-6)

    def test_every_target_visited(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        result = PatrolSimulator(fig1_scenario, plan, SimulationConfig(horizon=30_000)).run()
        visited = set(result.visited_targets())
        expected = {t.id for t in fig1_scenario.targets} | {fig1_scenario.sink.id}
        assert visited == expected

    def test_more_mules_shorten_interval_proportionally(self, fig1_scenario):
        results = {}
        for n in (2, 4):
            sc = fig1_scenario.with_mule_count(n)
            plan = plan_btctp(sc)
            res = PatrolSimulator(sc, plan, SimulationConfig(horizon=30_000)).run()
            intervals = [iv for ivs in per_target_intervals(res).values() for iv in ivs]
            results[n] = sum(intervals) / len(intervals)
        assert results[2] / results[4] == pytest.approx(2.0, rel=1e-3)

    def test_without_initialization_sd_is_positive(self):
        # mules bunched at the sink with no relocation -> unequal gaps -> SD > 0
        from repro.workloads.generator import uniform_scenario

        sc = uniform_scenario(num_targets=15, num_mules=3, seed=11)
        plan = plan_btctp(sc, location_initialization=False)
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=40_000)).run()
        assert average_sd(result) > 1.0
