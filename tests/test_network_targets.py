"""Unit tests for repro.network.targets."""

import pytest

from repro.geometry.point import Point
from repro.network.targets import RechargeStation, Sink, Target, TargetKind, make_targets


class TestTarget:
    def test_defaults_are_ntp(self):
        t = Target("g1", Point(1, 2))
        assert t.weight == 1
        assert t.kind is TargetKind.NTP
        assert not t.is_vip

    def test_vip_kind(self):
        t = Target("g1", Point(1, 2), weight=3)
        assert t.kind is TargetKind.VIP
        assert t.is_vip

    def test_position_coerced_from_tuple(self):
        t = Target("g1", (3, 4))
        assert t.position == Point(3.0, 4.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            Target("g1", Point(0, 0), weight=0)

    def test_negative_data_rate_rejected(self):
        with pytest.raises(ValueError):
            Target("g1", Point(0, 0), data_rate=-1.0)

    def test_reweighted(self):
        t = Target("g1", Point(0, 0), weight=1, data_rate=2.0)
        t2 = t.reweighted(4)
        assert t2.weight == 4
        assert t2.id == t.id and t2.position == t.position and t2.data_rate == t.data_rate
        assert t.weight == 1  # original unchanged

    def test_frozen(self):
        t = Target("g1", Point(0, 0))
        with pytest.raises(Exception):
            t.weight = 5  # type: ignore[misc]


class TestSink:
    def test_kind(self):
        s = Sink("sink", Point(0, 0))
        assert s.kind is TargetKind.SINK

    def test_as_target_is_weight_one(self):
        s = Sink("sink", (5, 5))
        t = s.as_target()
        assert isinstance(t, Target)
        assert t.weight == 1
        assert t.data_rate == 0.0
        assert t.position == Point(5.0, 5.0)

    def test_as_target_custom_weight(self):
        assert Sink("sink", Point(0, 0)).as_target(weight=3).weight == 3


class TestRechargeStation:
    def test_kind(self):
        r = RechargeStation("r", Point(1, 1))
        assert r.kind is TargetKind.RECHARGE

    def test_default_rate_is_instantaneous(self):
        assert RechargeStation("r", Point(0, 0)).recharge_rate == float("inf")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RechargeStation("r", Point(0, 0), recharge_rate=0.0)

    def test_as_target(self):
        t = RechargeStation("r", Point(2, 3)).as_target()
        assert t.weight == 1
        assert t.position == Point(2.0, 3.0)


class TestMakeTargets:
    def test_default_ids_and_weights(self):
        ts = make_targets([(0, 0), (1, 1), (2, 2)])
        assert [t.id for t in ts] == ["g1", "g2", "g3"]
        assert all(t.weight == 1 for t in ts)

    def test_sparse_weight_mapping(self):
        ts = make_targets([(0, 0), (1, 1), (2, 2)], weights={1: 3})
        assert [t.weight for t in ts] == [1, 3, 1]

    def test_full_weight_sequence(self):
        ts = make_targets([(0, 0), (1, 1)], weights=[2, 4])
        assert [t.weight for t in ts] == [2, 4]

    def test_weight_sequence_length_mismatch(self):
        with pytest.raises(ValueError):
            make_targets([(0, 0), (1, 1)], weights=[2])

    def test_custom_prefix_and_rate(self):
        ts = make_targets([(0, 0)], prefix="t", data_rate=5.0)
        assert ts[0].id == "t1"
        assert ts[0].data_rate == 5.0
