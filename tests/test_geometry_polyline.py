"""Unit tests for repro.geometry.polyline (arc-length parametrisation)."""

import pytest

from repro.geometry.point import Point
from repro.geometry.polyline import Polyline, point_along, resample_positions

SQUARE = [Point(0, 0), Point(100, 0), Point(100, 100), Point(0, 100)]


class TestPolylineBasics:
    def test_open_length(self):
        poly = Polyline(SQUARE, closed=False)
        assert poly.length == pytest.approx(300.0)

    def test_closed_length(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.length == pytest.approx(400.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Polyline([])

    def test_single_vertex(self):
        poly = Polyline([Point(5, 5)], closed=True)
        assert poly.length == 0.0
        assert poly.point_at(123.0) == Point(5, 5)

    def test_num_vertices(self):
        assert Polyline(SQUARE).num_vertices == 4

    def test_vertex_accessor(self):
        poly = Polyline(SQUARE)
        assert poly.vertex(2) == Point(100, 100)
        assert poly.vertex(-1) == Point(0, 100)

    def test_vertices_read_only(self):
        poly = Polyline(SQUARE)
        with pytest.raises(ValueError):
            poly.vertices[0, 0] = 42.0

    def test_segment_lengths_closed(self):
        poly = Polyline(SQUARE, closed=True)
        assert list(poly.segment_lengths) == pytest.approx([100.0] * 4)


class TestArcLengthQueries:
    def test_arc_length_of_vertex(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.arc_length_of_vertex(0) == 0.0
        assert poly.arc_length_of_vertex(1) == pytest.approx(100.0)
        assert poly.arc_length_of_vertex(3) == pytest.approx(300.0)

    def test_arc_length_of_vertex_out_of_range(self):
        with pytest.raises(IndexError):
            Polyline(SQUARE).arc_length_of_vertex(10)

    def test_point_at_midpoint_of_first_edge(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.point_at(50.0) == Point(50.0, 0.0)

    def test_point_at_vertex(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.point_at(200.0) == Point(100.0, 100.0)

    def test_point_at_wraps_on_closed(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.point_at(450.0) == poly.point_at(50.0)

    def test_point_at_negative_wraps_on_closed(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.point_at(-50.0) == poly.point_at(350.0)

    def test_point_at_clamped_on_open(self):
        poly = Polyline(SQUARE, closed=False)
        assert poly.point_at(-10.0) == Point(0, 0)
        assert poly.point_at(10_000.0) == Point(0, 100)

    def test_point_at_closing_segment(self):
        poly = Polyline(SQUARE, closed=True)
        # arc length 350 lies on the closing edge from (0,100) back to (0,0)
        assert poly.point_at(350.0) == Point(0.0, 50.0)


class TestEquallySpaced:
    def test_four_points_on_square(self):
        poly = Polyline(SQUARE, closed=True)
        pts = poly.equally_spaced(4)
        assert pts == [Point(0, 0), Point(100, 0), Point(100, 100), Point(0, 100)]

    def test_spacing_is_uniform(self):
        poly = Polyline(SQUARE, closed=True)
        pts = poly.equally_spaced(8)
        assert len(pts) == 8
        # consecutive points are 50 apart along the path (straight-line distance
        # equals arc distance here because 50 < edge length)
        for a, b in zip(pts, pts[1:]):
            assert a.distance_to(b) == pytest.approx(50.0)

    def test_offset_shifts_all_points(self):
        poly = Polyline(SQUARE, closed=True)
        pts = poly.equally_spaced(4, offset=50.0)
        assert pts[0] == Point(50.0, 0.0)

    def test_open_polyline_rejected(self):
        with pytest.raises(ValueError):
            Polyline(SQUARE, closed=False).equally_spaced(3)

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            Polyline(SQUARE, closed=True).equally_spaced(0)

    def test_more_points_than_vertices(self):
        poly = Polyline(SQUARE, closed=True)
        pts = poly.equally_spaced(16)
        assert len(pts) == 16


class TestHelpers:
    def test_point_along(self):
        assert point_along(SQUARE, 150.0) == Point(100.0, 50.0)

    def test_resample_positions(self):
        assert len(resample_positions(SQUARE, 5)) == 5

    def test_nearest_vertex(self):
        poly = Polyline(SQUARE, closed=True)
        assert poly.nearest_vertex(Point(90, 10)) == 1
        assert poly.nearest_vertex((5, 95)) == 3
