"""Property-based tests (hypothesis) for the core data structures and invariants.

These state the paper's structural definitions as properties over randomly
generated geometries: convex hulls contain their points, Hamiltonian circuits
visit everything exactly once, weighted patrolling paths give a VIP of weight
``w`` exactly ``w`` cycles and ``w`` visits per lap, the equal-length
segmentation really is equal, and Equation (4) is consistent with the energy
model.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.patrol_rules import build_patrol_walk
from repro.core.policies import BalancingLengthPolicy, ShortestLengthPolicy
from repro.core.start_points import assign_mules_to_start_points, compute_start_points
from repro.energy.battery import Battery
from repro.energy.model import EnergyModel, patrolling_rounds
from repro.geometry.hull import convex_hull, convex_hull_indices, point_in_hull
from repro.geometry.point import Point, distance, total_length
from repro.geometry.polyline import Polyline
from repro.graphs.hamiltonian import convex_hull_insertion_tour, nearest_neighbor_tour
from repro.graphs.improve import two_opt
from repro.graphs.multitour import MultiTour
from repro.graphs.validation import validate_tour, validate_walk_visits
from repro.sim.metrics import visiting_intervals

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

coordinate = st.floats(min_value=0.0, max_value=800.0, allow_nan=False, allow_infinity=False)
point_st = st.builds(Point, coordinate, coordinate)


def distinct_points(min_size: int, max_size: int):
    """Lists of points with pairwise-distinct (rounded) coordinates."""
    return st.lists(
        point_st, min_size=min_size, max_size=max_size,
        unique_by=lambda p: (round(p.x, 3), round(p.y, 3)),
    )


def coords_dict(min_size: int, max_size: int):
    return distinct_points(min_size, max_size).map(
        lambda pts: {f"g{i}": p for i, p in enumerate(pts)}
    )


COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


class TestHullProperties:
    @settings(max_examples=60, **COMMON)
    @given(distinct_points(1, 40))
    def test_hull_contains_every_input_point(self, pts):
        hull = convex_hull(pts)
        assert hull  # non-empty for non-empty input
        for p in pts:
            assert point_in_hull(p, hull)

    @settings(max_examples=60, **COMMON)
    @given(distinct_points(3, 40))
    def test_hull_vertices_are_input_points(self, pts):
        idx = convex_hull_indices(pts)
        assert all(0 <= i < len(pts) for i in idx)
        assert len(set(idx)) == len(idx)

    @settings(max_examples=40, **COMMON)
    @given(distinct_points(3, 25))
    def test_hull_is_invariant_under_point_order(self, pts):
        hull_a = {(p.x, p.y) for p in convex_hull(pts)}
        hull_b = {(p.x, p.y) for p in convex_hull(list(reversed(pts)))}
        assert hull_a == hull_b


class TestPolylineProperties:
    @settings(max_examples=60, **COMMON)
    @given(distinct_points(2, 20), st.integers(min_value=1, max_value=12))
    def test_equally_spaced_points_lie_on_path(self, pts, n):
        poly = Polyline(pts, closed=True)
        samples = poly.equally_spaced(n)
        assert len(samples) == n
        for p in samples:
            assert _distance_to_polyline(poly, p) < 1e-6

    @settings(max_examples=60, **COMMON)
    @given(distinct_points(2, 15), st.floats(min_value=-2000, max_value=2000,
                                             allow_nan=False, allow_infinity=False))
    def test_point_at_wraps_modulo_length(self, pts, s):
        poly = Polyline(pts, closed=True)
        if poly.length == 0:
            return
        a = poly.point_at(s)
        b = poly.point_at(s + poly.length)
        assert distance(a, b) < 1e-6


def _distance_to_polyline(poly: Polyline, p: Point) -> float:
    """Euclidean distance from ``p`` to the nearest segment of the closed polyline."""
    verts = poly.vertices
    n = len(verts)
    best = float("inf")
    for i in range(n):
        ax, ay = verts[i]
        bx, by = verts[(i + 1) % n]
        vx, vy = bx - ax, by - ay
        seg_len_sq = vx * vx + vy * vy
        if seg_len_sq == 0:
            d = math.hypot(p.x - ax, p.y - ay)
        else:
            t = max(0.0, min(1.0, ((p.x - ax) * vx + (p.y - ay) * vy) / seg_len_sq))
            d = math.hypot(p.x - (ax + t * vx), p.y - (ay + t * vy))
        best = min(best, d)
    return best


# ---------------------------------------------------------------------------
# Tours
# ---------------------------------------------------------------------------


class TestTourProperties:
    @settings(max_examples=40, **COMMON)
    @given(coords_dict(1, 25))
    def test_hull_insertion_is_hamiltonian(self, coords):
        tour = convex_hull_insertion_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))

    @settings(max_examples=40, **COMMON)
    @given(coords_dict(1, 25))
    def test_nearest_neighbor_is_hamiltonian(self, coords):
        tour = nearest_neighbor_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))

    @settings(max_examples=30, **COMMON)
    @given(coords_dict(4, 18))
    def test_two_opt_never_lengthens_and_preserves_nodes(self, coords):
        tour = nearest_neighbor_tour(coords)
        improved = two_opt(tour)
        assert improved.length() <= tour.length() + 1e-6
        validate_tour(improved, expected_nodes=list(coords))

    @settings(max_examples=30, **COMMON)
    @given(coords_dict(3, 20))
    def test_tour_length_at_least_hull_perimeter(self, coords):
        """Any closed tour through all points is at least as long as the convex hull perimeter."""
        tour = convex_hull_insertion_tour(coords)
        hull = convex_hull(list(coords.values()))
        hull_perimeter = total_length(hull, closed=True)
        assert tour.length() >= hull_perimeter - 1e-6


# ---------------------------------------------------------------------------
# Weighted patrol structures
# ---------------------------------------------------------------------------


class TestWppProperties:
    @settings(max_examples=30, **COMMON)
    @given(coords_dict(5, 16), st.integers(min_value=2, max_value=4),
           st.sampled_from(["shortest", "balanced"]))
    def test_single_vip_structure_and_walk_invariants(self, coords, weight, policy_name):
        tour = convex_hull_insertion_tour(coords)
        structure = MultiTour.from_tour(tour)
        vip = tour.order[len(tour) // 2]
        policy = ShortestLengthPolicy() if policy_name == "shortest" else BalancingLengthPolicy()
        policy.apply(structure, vip, weight)

        # Definition 3 invariants
        assert structure.degree(vip) == 2 * weight
        assert structure.is_eulerian()
        assert structure.length() >= tour.length() - 1e-9

        # Patrolling-rule walk traverses each edge once, visits VIP w times per lap
        walk = build_patrol_walk(structure, tour.order[0])
        weights = {n: (weight if n == vip else 1) for n in coords}
        validate_walk_visits(walk, weights)
        assert abs(structure.walk_length(walk) - structure.length()) < 1e-6

    @settings(max_examples=25, **COMMON)
    @given(coords_dict(8, 16), st.integers(min_value=2, max_value=3),
           st.integers(min_value=2, max_value=3))
    def test_two_vips_walk_visit_counts(self, coords, w1, w2):
        tour = convex_hull_insertion_tour(coords)
        structure = MultiTour.from_tour(tour)
        nodes = list(tour.order)
        vip1, vip2 = nodes[1], nodes[len(nodes) // 2]
        ShortestLengthPolicy().apply(structure, vip1, w1)
        ShortestLengthPolicy().apply(structure, vip2, w2)
        walk = build_patrol_walk(structure, nodes[0])
        weights = {n: 1 for n in coords}
        weights[vip1], weights[vip2] = w1, w2
        validate_walk_visits(walk, weights)


# ---------------------------------------------------------------------------
# Start points / location initialisation
# ---------------------------------------------------------------------------


class TestStartPointProperties:
    @settings(max_examples=40, **COMMON)
    @given(coords_dict(3, 20), st.integers(min_value=1, max_value=8))
    def test_equal_partition(self, coords, n):
        tour = convex_hull_insertion_tour(coords)
        walk = list(tour.order)
        sps = compute_start_points(walk, coords, n)
        assert len(sps) == n
        total = tour.length()
        if total == 0:
            return
        arcs = sorted(sp.arc_length for sp in sps)
        gaps = [b - a for a, b in zip(arcs, arcs[1:])] + [total - (arcs[-1] - arcs[0])]
        for g in gaps:
            assert math.isclose(g, total / n, rel_tol=1e-6, abs_tol=1e-6)

    @settings(max_examples=40, **COMMON)
    @given(coords_dict(3, 15), st.integers(min_value=1, max_value=6), st.data())
    def test_assignment_is_a_bijection(self, coords, n, data):
        tour = convex_hull_insertion_tour(coords)
        sps = compute_start_points(list(tour.order), coords, n)
        mule_positions = {
            f"m{i}": data.draw(point_st, label=f"mule{i}") for i in range(n)
        }
        energy = {f"m{i}": float(i) for i in range(n)}
        assignment = assign_mules_to_start_points(sps, mule_positions, energy)
        assert sorted(assignment.assignment.values()) == list(range(n))


# ---------------------------------------------------------------------------
# Energy / metrics
# ---------------------------------------------------------------------------


class TestEnergyProperties:
    @settings(max_examples=80, **COMMON)
    @given(st.floats(min_value=1.0, max_value=1e7, allow_nan=False),
           st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
           st.integers(min_value=0, max_value=500))
    def test_rounds_consistent_with_energy(self, energy, path_len, h):
        model = EnergyModel()
        r = patrolling_rounds(energy, path_len, h, model)
        per_round = model.round_energy(path_len, h)
        assert r * per_round <= energy + 1e-9
        assert (r + 1) * per_round > energy - 1e-9

    @settings(max_examples=80, **COMMON)
    @given(st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
           st.lists(st.floats(min_value=0.0, max_value=1e5, allow_nan=False), max_size=20))
    def test_battery_never_negative_and_conserves_energy(self, capacity, drains):
        b = Battery(capacity)
        for amount in drains:
            b.drain(amount)
            assert 0.0 <= b.remaining <= capacity
        assert math.isclose(b.remaining + b.total_drained, capacity, rel_tol=1e-9)


class TestMetricProperties:
    @settings(max_examples=80, **COMMON)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=50))
    def test_intervals_sum_to_span(self, times):
        intervals = visiting_intervals(times)
        assert len(intervals) == len(times) - 1
        assert all(iv >= 0 for iv in intervals)
        assert math.isclose(sum(intervals), max(times) - min(times), rel_tol=1e-9, abs_tol=1e-6)

    @settings(max_examples=80, **COMMON)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_include_first_adds_exactly_one_interval(self, times, initial):
        base = visiting_intervals(times)
        with_first = visiting_intervals(times, initial_time=0.0, include_first=True)
        assert len(with_first) == len(base) + 1
