"""Unit tests for repro.network.datamodel (data generation, buffering, delivery)."""

import pytest

from repro.network.datamodel import DataBuffer, DataCollectionModel, DataPacket


class TestDataPacket:
    def test_mean_generation_time(self):
        p = DataPacket("g1", generated_from=0.0, generated_to=100.0, collected_at=100.0, size=100.0)
        assert p.mean_generation_time == pytest.approx(50.0)

    def test_delivery_latency(self):
        p = DataPacket("g1", 0.0, 100.0, 100.0, 100.0)
        assert p.delivery_latency(delivered_at=250.0) == pytest.approx(200.0)


class TestDataBuffer:
    def test_add_and_len(self):
        buf = DataBuffer()
        buf.add(DataPacket("g1", 0, 10, 10, 10))
        assert len(buf) == 1

    def test_extend(self):
        buf = DataBuffer()
        buf.extend([DataPacket("g1", 0, 10, 10, 10), DataPacket("g2", 0, 5, 5, 5)])
        assert len(buf) == 2

    def test_total_size(self):
        buf = DataBuffer()
        buf.add(DataPacket("g1", 0, 10, 10, 10))
        buf.add(DataPacket("g2", 0, 5, 5, 7))
        assert buf.total_size == pytest.approx(17.0)

    def test_flush_empties_and_returns(self):
        buf = DataBuffer()
        buf.add(DataPacket("g1", 0, 10, 10, 10))
        out = buf.flush()
        assert len(out) == 1
        assert len(buf) == 0
        assert buf.total_size == 0.0


class TestDataCollectionModel:
    def test_backlog_grows_linearly(self):
        model = DataCollectionModel({"g1": 2.0})
        assert model.backlog("g1", 10.0) == pytest.approx(20.0)

    def test_collect_resets_backlog(self):
        model = DataCollectionModel({"g1": 2.0})
        packet = model.collect("g1", 10.0)
        assert packet.size == pytest.approx(20.0)
        assert model.backlog("g1", 10.0) == 0.0
        assert model.backlog("g1", 15.0) == pytest.approx(10.0)

    def test_collect_window_bounds(self):
        model = DataCollectionModel({"g1": 1.0})
        model.collect("g1", 5.0)
        p = model.collect("g1", 12.0)
        assert p.generated_from == 5.0
        assert p.generated_to == 12.0
        assert p.collected_at == 12.0

    def test_unknown_target_rejected(self):
        model = DataCollectionModel({"g1": 1.0})
        with pytest.raises(KeyError):
            model.collect("g9", 1.0)

    def test_time_moving_backwards_rejected(self):
        model = DataCollectionModel({"g1": 1.0})
        model.collect("g1", 10.0)
        with pytest.raises(ValueError):
            model.collect("g1", 5.0)

    def test_zero_rate_target_generates_no_data(self):
        model = DataCollectionModel({"g1": 0.0})
        assert model.collect("g1", 100.0).size == 0.0

    def test_independent_targets(self):
        model = DataCollectionModel({"g1": 1.0, "g2": 3.0})
        model.collect("g1", 10.0)
        assert model.backlog("g2", 10.0) == pytest.approx(30.0)
        assert model.last_collection_time("g1") == 10.0
        assert model.last_collection_time("g2") == 0.0

    def test_target_ids(self):
        model = DataCollectionModel({"g1": 1.0, "g2": 1.0})
        assert set(model.target_ids) == {"g1", "g2"}
