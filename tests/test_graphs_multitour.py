"""Unit tests for repro.graphs.multitour.MultiTour (the WPP/WRP multigraph)."""

import pytest

from repro.geometry.point import Point
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour


@pytest.fixture
def square_multitour(square_tour) -> MultiTour:
    return MultiTour.from_tour(square_tour)


class TestConstruction:
    def test_from_tour_degrees(self, square_multitour):
        for node in square_multitour.nodes:
            assert square_multitour.degree(node) == 2

    def test_from_tour_length_matches(self, square_tour, square_multitour):
        assert square_multitour.length() == pytest.approx(square_tour.length())

    def test_copy_is_independent(self, square_multitour):
        clone = square_multitour.copy()
        clone.remove_edge("a", "b")
        assert square_multitour.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_add_node(self, square_multitour):
        square_multitour.add_node("r", Point(50, 50))
        assert "r" in square_multitour
        assert square_multitour.degree("r") == 0

    def test_add_duplicate_node_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.add_node("a", Point(0, 0))


class TestEdgeSurgery:
    def test_add_edge_increments_degrees(self, square_multitour):
        square_multitour.add_edge("a", "c")
        assert square_multitour.degree("a") == 3
        assert square_multitour.degree("c") == 3

    def test_parallel_edges_allowed(self, square_multitour):
        k1 = square_multitour.add_edge("a", "c")
        k2 = square_multitour.add_edge("a", "c")
        assert k1 != k2
        assert square_multitour.degree("a") == 4

    def test_self_loop_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.add_edge("a", "a")

    def test_edge_to_unknown_node_rejected(self, square_multitour):
        with pytest.raises(KeyError):
            square_multitour.add_edge("a", "zzz")

    def test_remove_edge(self, square_multitour):
        square_multitour.remove_edge("a", "b")
        assert not square_multitour.has_edge("a", "b")
        assert square_multitour.degree("a") == 1

    def test_remove_missing_edge_raises(self, square_multitour):
        with pytest.raises(KeyError):
            square_multitour.remove_edge("a", "c")

    def test_remove_specific_parallel_edge(self, square_multitour):
        k1 = square_multitour.add_edge("a", "c")
        square_multitour.add_edge("a", "c")
        square_multitour.remove_edge("a", "c", key=k1)
        assert square_multitour.has_edge("a", "c")
        assert square_multitour.degree("a") == 3

    def test_break_edge_preserves_endpoint_degrees(self, square_multitour):
        before_a = square_multitour.degree("a")
        before_b = square_multitour.degree("b")
        square_multitour.break_edge("a", "b", "c")
        assert square_multitour.degree("a") == before_a
        assert square_multitour.degree("b") == before_b
        assert square_multitour.degree("c") == 4  # the hub gains one cycle

    def test_break_edge_incident_to_hub_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.break_edge("a", "b", "a")

    def test_num_edges(self, square_multitour):
        assert square_multitour.num_edges() == 4
        square_multitour.add_edge("a", "c")
        assert square_multitour.num_edges() == 5


class TestStructureQueries:
    def test_cycles_through(self, square_multitour):
        assert square_multitour.cycles_through("a") == 1
        square_multitour.break_edge("b", "c", "a")
        assert square_multitour.cycles_through("a") == 2

    def test_is_connected_true(self, square_multitour):
        assert square_multitour.is_connected()

    def test_is_connected_false_after_split(self, square_points):
        mt = MultiTour(square_points)
        mt.add_edge("a", "b")
        mt.add_edge("c", "d")
        assert not mt.is_connected()

    def test_is_eulerian(self, square_multitour):
        assert square_multitour.is_eulerian()
        square_multitour.add_edge("a", "c")  # odd degrees now
        assert not square_multitour.is_eulerian()

    def test_weight_profile(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        profile = square_multitour.weight_profile()
        assert profile["d"] == 2
        assert profile["a"] == 1

    def test_edges_listed_once(self, square_multitour):
        edges = square_multitour.edges()
        assert len(edges) == 4
        keys = [k for _u, _v, k in edges]
        assert len(set(keys)) == 4


class TestEulerCircuit:
    def test_simple_cycle_circuit(self, square_multitour):
        walk = square_multitour.euler_circuit(start="a")
        assert walk[0] == walk[-1] == "a"
        assert len(walk) == 5  # 4 edges + closing repeat
        assert set(walk) == {"a", "b", "c", "d"}

    def test_circuit_uses_every_edge_once(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")  # d now weight 2
        walk = square_multitour.euler_circuit(start="a")
        assert len(walk) - 1 == square_multitour.num_edges()
        assert walk.count("d") == 2

    def test_non_eulerian_raises(self, square_multitour):
        square_multitour.add_edge("a", "c")
        with pytest.raises(ValueError):
            square_multitour.euler_circuit()

    def test_walk_length_matches_structure_length(self, square_multitour):
        walk = square_multitour.euler_circuit(start="a")
        assert square_multitour.walk_length(walk) == pytest.approx(square_multitour.length())


class TestCyclesAt:
    def test_single_cycle(self, square_multitour):
        cycles = square_multitour.cycles_at("a")
        assert len(cycles) == 1
        assert cycles[0].length == pytest.approx(square_multitour.length())

    def test_two_cycles_after_break(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        cycles = square_multitour.cycles_at("d")
        assert len(cycles) == 2
        total = sum(c.length for c in cycles)
        assert total == pytest.approx(square_multitour.length())

    def test_cycles_at_node_not_in_walk(self, square_points):
        mt = MultiTour(square_points)
        mt.add_edge("a", "b")
        mt.add_edge("b", "c")
        mt.add_edge("c", "a")
        assert mt.cycles_at("d", walk=["a", "b", "c", "a"]) == []

    def test_visit_counts(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        walk = square_multitour.euler_circuit(start="a")
        counts = square_multitour.visit_counts(walk)
        assert counts["d"] == 2
        assert counts["a"] == 1

    def test_as_networkx_multigraph(self, square_multitour):
        square_multitour.add_edge("a", "c")
        g = square_multitour.as_networkx()
        assert g.number_of_edges() == 5
