"""Unit tests for repro.graphs.multitour.MultiTour (the WPP/WRP multigraph)."""

import pytest

from repro.geometry.point import Point
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour


@pytest.fixture
def square_multitour(square_tour) -> MultiTour:
    return MultiTour.from_tour(square_tour)


class TestConstruction:
    def test_from_tour_degrees(self, square_multitour):
        for node in square_multitour.nodes:
            assert square_multitour.degree(node) == 2

    def test_from_tour_length_matches(self, square_tour, square_multitour):
        assert square_multitour.length() == pytest.approx(square_tour.length())

    def test_copy_is_independent(self, square_multitour):
        clone = square_multitour.copy()
        clone.remove_edge("a", "b")
        assert square_multitour.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_add_node(self, square_multitour):
        square_multitour.add_node("r", Point(50, 50))
        assert "r" in square_multitour
        assert square_multitour.degree("r") == 0

    def test_add_duplicate_node_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.add_node("a", Point(0, 0))


class TestEdgeSurgery:
    def test_add_edge_increments_degrees(self, square_multitour):
        square_multitour.add_edge("a", "c")
        assert square_multitour.degree("a") == 3
        assert square_multitour.degree("c") == 3

    def test_parallel_edges_allowed(self, square_multitour):
        k1 = square_multitour.add_edge("a", "c")
        k2 = square_multitour.add_edge("a", "c")
        assert k1 != k2
        assert square_multitour.degree("a") == 4

    def test_self_loop_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.add_edge("a", "a")

    def test_edge_to_unknown_node_rejected(self, square_multitour):
        with pytest.raises(KeyError):
            square_multitour.add_edge("a", "zzz")

    def test_remove_edge(self, square_multitour):
        square_multitour.remove_edge("a", "b")
        assert not square_multitour.has_edge("a", "b")
        assert square_multitour.degree("a") == 1

    def test_remove_missing_edge_raises(self, square_multitour):
        with pytest.raises(KeyError):
            square_multitour.remove_edge("a", "c")

    def test_remove_specific_parallel_edge(self, square_multitour):
        k1 = square_multitour.add_edge("a", "c")
        square_multitour.add_edge("a", "c")
        square_multitour.remove_edge("a", "c", key=k1)
        assert square_multitour.has_edge("a", "c")
        assert square_multitour.degree("a") == 3

    def test_break_edge_preserves_endpoint_degrees(self, square_multitour):
        before_a = square_multitour.degree("a")
        before_b = square_multitour.degree("b")
        square_multitour.break_edge("a", "b", "c")
        assert square_multitour.degree("a") == before_a
        assert square_multitour.degree("b") == before_b
        assert square_multitour.degree("c") == 4  # the hub gains one cycle

    def test_break_edge_incident_to_hub_rejected(self, square_multitour):
        with pytest.raises(ValueError):
            square_multitour.break_edge("a", "b", "a")

    def test_num_edges(self, square_multitour):
        assert square_multitour.num_edges() == 4
        square_multitour.add_edge("a", "c")
        assert square_multitour.num_edges() == 5


class TestStructureQueries:
    def test_cycles_through(self, square_multitour):
        assert square_multitour.cycles_through("a") == 1
        square_multitour.break_edge("b", "c", "a")
        assert square_multitour.cycles_through("a") == 2

    def test_is_connected_true(self, square_multitour):
        assert square_multitour.is_connected()

    def test_is_connected_false_after_split(self, square_points):
        mt = MultiTour(square_points)
        mt.add_edge("a", "b")
        mt.add_edge("c", "d")
        assert not mt.is_connected()

    def test_is_eulerian(self, square_multitour):
        assert square_multitour.is_eulerian()
        square_multitour.add_edge("a", "c")  # odd degrees now
        assert not square_multitour.is_eulerian()

    def test_weight_profile(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        profile = square_multitour.weight_profile()
        assert profile["d"] == 2
        assert profile["a"] == 1

    def test_edges_listed_once(self, square_multitour):
        edges = square_multitour.edges()
        assert len(edges) == 4
        keys = [k for _u, _v, k in edges]
        assert len(set(keys)) == 4


class TestEulerCircuit:
    def test_simple_cycle_circuit(self, square_multitour):
        walk = square_multitour.euler_circuit(start="a")
        assert walk[0] == walk[-1] == "a"
        assert len(walk) == 5  # 4 edges + closing repeat
        assert set(walk) == {"a", "b", "c", "d"}

    def test_circuit_uses_every_edge_once(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")  # d now weight 2
        walk = square_multitour.euler_circuit(start="a")
        assert len(walk) - 1 == square_multitour.num_edges()
        assert walk.count("d") == 2

    def test_non_eulerian_raises(self, square_multitour):
        square_multitour.add_edge("a", "c")
        with pytest.raises(ValueError):
            square_multitour.euler_circuit()

    def test_walk_length_matches_structure_length(self, square_multitour):
        walk = square_multitour.euler_circuit(start="a")
        assert square_multitour.walk_length(walk) == pytest.approx(square_multitour.length())


class TestCyclesAt:
    def test_single_cycle(self, square_multitour):
        cycles = square_multitour.cycles_at("a")
        assert len(cycles) == 1
        assert cycles[0].length == pytest.approx(square_multitour.length())

    def test_two_cycles_after_break(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        cycles = square_multitour.cycles_at("d")
        assert len(cycles) == 2
        total = sum(c.length for c in cycles)
        assert total == pytest.approx(square_multitour.length())

    def test_cycles_at_node_not_in_walk(self, square_points):
        mt = MultiTour(square_points)
        mt.add_edge("a", "b")
        mt.add_edge("b", "c")
        mt.add_edge("c", "a")
        assert mt.cycles_at("d", walk=["a", "b", "c", "a"]) == []

    def test_visit_counts(self, square_multitour):
        square_multitour.break_edge("b", "c", "d")
        walk = square_multitour.euler_circuit(start="a")
        counts = square_multitour.visit_counts(walk)
        assert counts["d"] == 2
        assert counts["a"] == 1

    def test_as_networkx_multigraph(self, square_multitour):
        square_multitour.add_edge("a", "c")
        g = square_multitour.as_networkx()
        assert g.number_of_edges() == 5


class TestEdgeCaseScenarios:
    """PR-4 satellite: single-target scenarios, all-equal weights, weight-1 VIPs."""

    def test_single_target_plus_sink_structure(self):
        # The smallest patrollable scenario: one target and the sink, joined
        # by two parallel edges (out and back) — a valid Eulerian structure.
        mt = MultiTour({"sink": Point(0, 0), "t": Point(10, 0)})
        mt.add_edge("sink", "t")
        mt.add_edge("sink", "t")
        assert mt.is_eulerian()
        walk = mt.euler_circuit(start="sink")
        assert walk[0] == walk[-1] == "sink"
        assert mt.visit_counts(walk) == {"sink": 1, "t": 1}
        assert mt.length() == pytest.approx(20.0)

    def test_single_target_scenario_end_to_end(self):
        from repro.baselines.base import get_strategy
        from repro.scenarios import get_scenario

        scenario = get_scenario("uniform", num_targets=1, num_mules=1, seed=3)
        for strategy in ("b-tctp", "chb", "sweep", "w-tctp"):
            plan = get_strategy(strategy).plan(scenario.fresh_copy())
            loop = plan.routes[scenario.mules[0].id].loop
            assert sorted(set(loop)) == sorted({scenario.sink.id, scenario.targets[0].id})

    def test_all_equal_vip_weights_balanced_degrees(self, square_tour):
        # Every target weight 2: each node must end with degree 4, and the
        # walk must visit each exactly twice per lap.
        from repro.core.wtctp import build_weighted_patrolling_path

        weights = {n: 2 for n in square_tour.order}
        structure, walk = build_weighted_patrolling_path(square_tour, weights, "shortest")
        for node in square_tour.order:
            assert structure.degree(node) == 4
            assert structure.cycles_through(node) == 2
        assert structure.visit_counts(walk) == weights

    def test_weight_one_vips_are_noops(self, square_tour):
        # "VIPs" of weight 1 must leave the structure untouched: the WPP is
        # exactly the lifted Hamiltonian circuit, for both policies.
        from repro.core.wtctp import build_wpp_structure

        base = MultiTour.from_tour(square_tour)
        for policy in ("shortest", "balanced"):
            structure, full = build_wpp_structure(
                square_tour, {n: 1 for n in square_tour.order}, policy
            )
            assert sorted(structure.edges()) == sorted(base.edges())
            assert structure.weight_profile() == {n: 1 for n in square_tour.order}

    def test_weight_one_vip_scenario_matches_unweighted_plan(self):
        # A scenario whose "VIPs" all have weight 1 must produce the same
        # W-TCTP walk as a plain B-TCTP circuit (every node once per lap).
        from repro.baselines.base import get_strategy
        from repro.scenarios import get_scenario

        scenario = get_scenario("uniform", num_targets=8, num_mules=2,
                                num_vips=3, vip_weight=1, seed=5)
        w_plan = get_strategy("w-tctp").plan(scenario.fresh_copy())
        b_plan = get_strategy("b-tctp").plan(scenario.fresh_copy())
        w_loop = next(iter(w_plan.routes.values())).loop
        b_loop = next(iter(b_plan.routes.values())).loop
        assert sorted(w_loop) == sorted(b_loop)  # same node multiset: no VIP expansion
        assert len(set(w_loop)) == len(w_loop)   # every node exactly once
