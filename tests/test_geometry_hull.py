"""Unit tests for repro.geometry.hull (Andrew monotone chain convex hull)."""

import numpy as np

from repro.geometry.hull import convex_hull, convex_hull_indices, point_in_hull
from repro.geometry.point import Point


def _signed_area(points):
    pts = [(p.x, p.y) for p in points]
    area = 0.0
    for i in range(len(pts)):
        x1, y1 = pts[i]
        x2, y2 = pts[(i + 1) % len(pts)]
        area += x1 * y2 - x2 * y1
    return 0.5 * area


class TestConvexHullIndices:
    def test_square_with_interior_point(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10), Point(5, 5)]
        hull = convex_hull_indices(pts)
        assert sorted(hull) == [0, 1, 2, 3]

    def test_hull_is_counterclockwise(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10), Point(5, 5)]
        hull_pts = convex_hull(pts)
        assert _signed_area(hull_pts) > 0

    def test_empty(self):
        assert convex_hull_indices([]) == []

    def test_single_point(self):
        assert convex_hull_indices([Point(1, 1)]) == [0]

    def test_two_points(self):
        assert sorted(convex_hull_indices([Point(0, 0), Point(1, 1)])) == [0, 1]

    def test_two_coincident_points(self):
        assert convex_hull_indices([Point(2, 2), Point(2, 2)]) == [0]

    def test_collinear_returns_extremes(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)]
        hull = convex_hull_indices(pts)
        assert sorted(hull) == [0, 3]

    def test_duplicates_do_not_break_hull(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10), Point(10, 0), Point(0, 0)]
        hull = convex_hull_indices(pts)
        coords = {(pts[i].x, pts[i].y) for i in hull}
        assert coords == {(0, 0), (10, 0), (10, 10), (0, 10)}

    def test_collinear_boundary_points_dropped(self):
        pts = [Point(0, 0), Point(5, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        hull = convex_hull_indices(pts)
        assert 1 not in hull  # midpoint of the bottom edge is not an extreme point
        assert sorted(hull) == [0, 2, 3, 4]

    def test_random_points_all_inside_hull(self):
        rng = np.random.default_rng(42)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(60, 2))]
        hull_pts = convex_hull(pts)
        assert len(hull_pts) >= 3
        for p in pts:
            assert point_in_hull(p, hull_pts)

    def test_triangle(self):
        pts = [Point(0, 0), Point(4, 0), Point(2, 3)]
        assert sorted(convex_hull_indices(pts)) == [0, 1, 2]


class TestPointInHull:
    def test_inside(self):
        hull = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        assert point_in_hull(Point(5, 5), hull)

    def test_outside(self):
        hull = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        assert not point_in_hull(Point(15, 5), hull)

    def test_on_boundary(self):
        hull = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        assert point_in_hull(Point(10, 5), hull)

    def test_on_vertex(self):
        hull = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        assert point_in_hull(Point(0, 0), hull)

    def test_degenerate_single_point_hull(self):
        assert point_in_hull(Point(1, 1), [Point(1, 1)])
        assert not point_in_hull(Point(1, 2), [Point(1, 1)])

    def test_degenerate_segment_hull(self):
        seg = [Point(0, 0), Point(10, 0)]
        assert point_in_hull(Point(5, 0), seg)
        assert not point_in_hull(Point(5, 1), seg)
        assert not point_in_hull(Point(20, 0), seg)

    def test_empty_hull(self):
        assert not point_in_hull(Point(0, 0), [])
