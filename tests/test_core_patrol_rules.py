"""Unit tests for repro.core.patrol_rules (the CCW minimal-angle traversal rule)."""

import math

import pytest

from repro.core.patrol_rules import angle_walk, build_patrol_walk, next_edge_by_angle
from repro.core.policies import BalancingLengthPolicy, ShortestLengthPolicy
from repro.geometry.point import Point
from repro.graphs.hamiltonian import convex_hull_insertion_tour
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import validate_walk_visits


def ring_structure(n=10, radius=200.0):
    coords = {
        f"g{i}": Point(400 + radius * math.cos(2 * math.pi * i / n),
                       400 + radius * math.sin(2 * math.pi * i / n))
        for i in range(n)
    }
    return MultiTour.from_tour(convex_hull_insertion_tour(coords)), coords


class TestNextEdgeByAngle:
    def test_single_candidate(self):
        structure, _ = ring_structure(6)
        available = [("g1", 0)]
        assert next_edge_by_angle(structure, "g0", "g5", available) == ("g1", 0)

    def test_no_candidates_raises(self):
        structure, _ = ring_structure(6)
        with pytest.raises(ValueError):
            next_edge_by_angle(structure, "g0", "g5", [])

    def test_prefers_smallest_ccw_angle(self):
        coords = {
            "center": Point(0, 0),
            "west": Point(-100, 0),
            "north": Point(0, 100),
            "east": Point(100, 0),
            "south": Point(0, -100),
        }
        structure = MultiTour(coords)
        for n in ("north", "east", "south"):
            structure.add_edge("center", n)
        # Arriving from the west: the reference direction is center->west (pi).
        # CCW angles: south = pi/2 + ... let's measure: to south (3pi/2 heading) from pi -> pi/2;
        # to east (0) -> pi; to north (pi/2) -> 3pi/2.  Smallest CCW angle = south.
        available = [(n, k) for n, k in structure.neighbors("center")]
        chosen, _ = next_edge_by_angle(structure, "center", "west", available)
        assert chosen == "south"

    def test_straight_back_ranked_last(self):
        coords = {"center": Point(0, 0), "west": Point(-100, 0), "far_west": Point(-200, 0),
                  "north": Point(0, 100)}
        structure = MultiTour(coords)
        structure.add_edge("center", "north")
        # an edge pointing exactly back towards the incoming direction exists too
        structure.add_edge("center", "far_west")
        available = [(n, k) for n, k in structure.neighbors("center")]
        chosen, _ = next_edge_by_angle(structure, "center", "west", available)
        assert chosen == "north"

    def test_deterministic_without_previous(self):
        structure, _ = ring_structure(8)
        available = [(n, k) for n, k in structure.neighbors("g0")]
        first = next_edge_by_angle(structure, "g0", None, available)
        second = next_edge_by_angle(structure, "g0", None, available)
        assert first == second


class TestAngleWalk:
    def test_plain_cycle_traversed_fully(self):
        structure, coords = ring_structure(10)
        walk = angle_walk(structure, "g0")
        assert walk[0] == walk[-1] == "g0"
        assert len(walk) - 1 == structure.num_edges()
        assert set(walk) == set(coords)

    def test_unknown_start_raises(self):
        structure, _ = ring_structure(6)
        with pytest.raises(KeyError):
            angle_walk(structure, "nope")

    def test_strict_mode_on_complete_walk(self):
        structure, _ = ring_structure(8)
        walk = angle_walk(structure, "g0", strict=True)
        assert len(walk) - 1 == structure.num_edges()


class TestBuildPatrolWalk:
    @pytest.mark.parametrize("policy_cls", [ShortestLengthPolicy, BalancingLengthPolicy])
    @pytest.mark.parametrize("weight", [2, 3])
    def test_walk_covers_every_edge_once(self, policy_cls, weight):
        structure, coords = ring_structure(12)
        policy_cls().apply(structure, "g4", weight)
        walk = build_patrol_walk(structure, "g0")
        assert walk[0] == walk[-1] == "g0"
        assert len(walk) - 1 == structure.num_edges()
        weights = {n: (weight if n == "g4" else 1) for n in coords}
        validate_walk_visits(walk, weights)

    def test_walk_length_equals_structure_length(self):
        structure, _ = ring_structure(12)
        ShortestLengthPolicy().apply(structure, "g2", 3)
        walk = build_patrol_walk(structure, "g0")
        assert structure.walk_length(walk) == pytest.approx(structure.length())

    def test_vip_visited_weight_times(self):
        structure, _ = ring_structure(12)
        BalancingLengthPolicy().apply(structure, "g6", 4)
        walk = build_patrol_walk(structure, "g0")
        assert walk[:-1].count("g6") == 4

    def test_multiple_vips(self):
        structure, coords = ring_structure(16)
        ShortestLengthPolicy().apply(structure, "g3", 2)
        ShortestLengthPolicy().apply(structure, "g11", 3)
        walk = build_patrol_walk(structure, "g0")
        weights = {n: 1 for n in coords}
        weights.update({"g3": 2, "g11": 3})
        validate_walk_visits(walk, weights)

    def test_non_eulerian_rejected(self):
        structure, _ = ring_structure(6)
        structure.add_edge("g0", "g3")
        with pytest.raises(ValueError):
            build_patrol_walk(structure, "g0")

    def test_deterministic(self):
        s1, _ = ring_structure(12)
        s2, _ = ring_structure(12)
        BalancingLengthPolicy().apply(s1, "g5", 3)
        BalancingLengthPolicy().apply(s2, "g5", 3)
        assert build_patrol_walk(s1, "g0") == build_patrol_walk(s2, "g0")

    def test_parallel_chords_handled(self):
        # Force a structure where the VIP gets two chords to the same break point
        coords = {"a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100),
                  "d": Point(0, 100), "v": Point(50, 50)}
        structure = MultiTour(coords)
        for u, w in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]:
            structure.add_edge(u, w)
        structure.add_edge("a", "v")
        structure.add_edge("a", "v")  # parallel chord pair keeps degrees even
        walk = build_patrol_walk(structure, "b")
        assert len(walk) - 1 == structure.num_edges()
