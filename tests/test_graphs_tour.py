"""Unit tests for repro.graphs.tour.Tour."""

import pytest

from repro.geometry.point import Point
from repro.graphs.tour import Tour


class TestConstruction:
    def test_order_preserved(self, square_tour):
        assert square_tour.order == ("a", "b", "c", "d")

    def test_duplicate_nodes_rejected(self, square_points):
        with pytest.raises(ValueError):
            Tour(["a", "b", "a"], square_points)

    def test_missing_coordinates_rejected(self, square_points):
        with pytest.raises(ValueError):
            Tour(["a", "b", "z"], square_points)

    def test_from_points_default_ids(self):
        t = Tour.from_points([Point(0, 0), Point(1, 0), Point(1, 1)])
        assert t.order == (0, 1, 2)

    def test_from_points_custom_ids(self):
        t = Tour.from_points([Point(0, 0), Point(1, 0)], ids=["x", "y"])
        assert t.order == ("x", "y")

    def test_from_points_id_length_mismatch(self):
        with pytest.raises(ValueError):
            Tour.from_points([Point(0, 0)], ids=["x", "y"])

    def test_equality(self, square_points):
        t1 = Tour(["a", "b", "c", "d"], square_points)
        t2 = Tour(["a", "b", "c", "d"], square_points)
        t3 = Tour(["a", "c", "b", "d"], square_points)
        assert t1 == t2
        assert t1 != t3


class TestAccessors:
    def test_len_and_contains(self, square_tour):
        assert len(square_tour) == 4
        assert "a" in square_tour
        assert "z" not in square_tour

    def test_position_of(self, square_tour):
        assert square_tour.position_of("c") == 2

    def test_successor_predecessor_wraparound(self, square_tour):
        assert square_tour.successor("d") == "a"
        assert square_tour.predecessor("a") == "d"

    def test_points_in_order(self, square_tour, square_points):
        assert square_tour.points_in_order() == [square_points[n] for n in "abcd"]

    def test_edges_include_closing_edge(self, square_tour):
        edges = square_tour.edges()
        assert len(edges) == 4
        assert ("d", "a") in edges


class TestGeometry:
    def test_length_of_square(self, square_tour):
        assert square_tour.length() == pytest.approx(400.0)

    def test_edge_length(self, square_tour):
        assert square_tour.edge_length("a", "c") == pytest.approx(100.0 * 2 ** 0.5)

    def test_signed_area_positive_for_ccw(self, square_tour):
        assert square_tour.signed_area() == pytest.approx(10_000.0)

    def test_signed_area_negative_for_cw(self, square_points):
        cw = Tour(["a", "d", "c", "b"], square_points)
        assert cw.signed_area() == pytest.approx(-10_000.0)

    def test_counterclockwise_normalises_cw_tour(self, square_points):
        cw = Tour(["a", "d", "c", "b"], square_points)
        ccw = cw.counterclockwise()
        assert ccw.signed_area() > 0
        assert ccw.length() == pytest.approx(cw.length())

    def test_counterclockwise_keeps_ccw_tour(self, square_tour):
        assert square_tour.counterclockwise() is square_tour

    def test_polyline_round_trip(self, square_tour):
        poly = square_tour.polyline()
        assert poly.length == pytest.approx(square_tour.length())


class TestTransformations:
    def test_rotated_to(self, square_tour):
        rotated = square_tour.rotated_to("c")
        assert rotated.order == ("c", "d", "a", "b")
        assert rotated.length() == pytest.approx(square_tour.length())

    def test_reversed_keeps_start(self, square_tour):
        rev = square_tour.reversed()
        assert rev.order == ("a", "d", "c", "b")

    def test_with_node_inserted(self, square_tour):
        t = square_tour.with_node_inserted("e", Point(50, -10), 1)
        assert t.order == ("a", "e", "b", "c", "d")
        assert "e" in t

    def test_with_node_inserted_duplicate_rejected(self, square_tour):
        with pytest.raises(ValueError):
            square_tour.with_node_inserted("a", Point(1, 1), 0)

    def test_without_node(self, square_tour):
        t = square_tour.without_node("b")
        assert t.order == ("a", "c", "d")

    def test_without_missing_node_raises(self, square_tour):
        with pytest.raises(KeyError):
            square_tour.without_node("zzz")

    def test_transformations_do_not_mutate_original(self, square_tour):
        square_tour.rotated_to("b")
        square_tour.without_node("c")
        assert square_tour.order == ("a", "b", "c", "d")


class TestQueries:
    def test_insertion_cost_on_edge_is_zero(self, square_tour):
        # a point on the a-b edge costs nothing to insert between a and b
        assert square_tour.insertion_cost(Point(50, 0), 1) == pytest.approx(0.0)

    def test_insertion_cost_positive_off_edge(self, square_tour):
        assert square_tour.insertion_cost(Point(50, -30), 1) > 0

    def test_nearest_node(self, square_tour):
        assert square_tour.nearest_node(Point(95, 5)) == "b"

    def test_as_networkx(self, square_tour):
        g = square_tour.as_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        assert g["a"]["b"]["weight"] == pytest.approx(100.0)
