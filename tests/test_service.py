"""Tests for the service layer: transport registry, scheduler, coalescing.

The HTTP wire protocol has its own file (test_service_http.py); this one
covers the transport-agnostic pieces — registry contracts, the scheduler's
coalescing/backpressure/shutdown semantics, the store-backed zero-duplicate
guarantee under concurrent submitters, and the runner's new cancellable /
observable entry points.
"""

import io
import json
import threading

import pytest

from repro.runner import Campaign, CampaignSpec, RunSpec
from repro.runner.campaign import _json_sanitize, execute_cell
from repro.scenarios import ScenarioSpec
from repro.service import (
    ServiceClosed,
    ServiceOverloaded,
    ServiceScheduler,
    available_transports,
    canonical_transport_name,
    filter_transport_kwargs,
    get_transport,
    register_transport,
    transport_info,
    transport_params,
    validate_transport_options,
)
from repro.sim import SimulationConfig
from repro.store import ResultStore, run_fingerprint


def tiny_run(seed=0, strategy="b-tctp"):
    return RunSpec(
        strategy=strategy,
        scenario=ScenarioSpec("uniform", {"num_targets": 5, "num_mules": 2}),
        sim=SimulationConfig(horizon=300.0, track_energy=False),
        seed=seed,
    )


def tiny_campaign(replications=2):
    return CampaignSpec(base=tiny_run(), grid={"strategy": ["b-tctp", "chb"]},
                        replications=replications)


def canonical(records):
    return [json.dumps(_json_sanitize(r), sort_keys=True) for r in records]


# --------------------------------------------------------------------------- #
# Transport registry
# --------------------------------------------------------------------------- #

class TestTransportRegistry:
    def test_builtins_registered(self):
        names = available_transports()
        assert "http" in names and "stdio" in names
        assert {"rest", "console"} <= set(available_transports(include_aliases=True))

    def test_aliases_resolve(self):
        assert canonical_transport_name("rest") == "http"
        assert canonical_transport_name("CONSOLE") == "stdio"

    def test_unknown_transport_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'http'"):
            canonical_transport_name("htp")

    def test_declared_params(self):
        assert transport_params("http") == {"host", "port"}
        assert transport_params("stdio") == frozenset()
        info = transport_info("http")
        assert info.params["port"].default == 8422
        assert info.params["host"].kind == "str"
        assert info.defaults() == {"host": "127.0.0.1", "port": 8422}

    def test_unknown_option_rejected_with_suggestion(self):
        with pytest.raises(ValueError, match="does not accept option"):
            validate_transport_options("http", {"prot": 1})
        with pytest.raises(ValueError, match="did you mean 'port'"):
            validate_transport_options("http", {"porp": 1})

    def test_stdio_takes_no_socket_options(self):
        with pytest.raises(ValueError, match="does not accept"):
            validate_transport_options("stdio", {"host": "0.0.0.0"})
        assert filter_transport_kwargs("stdio", {"host": "x", "port": 1}) == {}
        assert filter_transport_kwargs("http", {"host": "x", "port": 1, "junk": 2}) \
            == {"host": "x", "port": 1}

    def test_kwargs_factory_rejected(self):
        with pytest.raises(TypeError, match="explicit keyword option set"):
            register_transport("bad-transport", lambda scheduler, **kw: None,
                               description="catch-all")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_transport("http", lambda scheduler: None, description="dup")
        with pytest.raises(ValueError, match="already registered"):
            register_transport("fresh-name", lambda scheduler: None,
                              aliases=("rest",), description="alias dup")

    def test_get_transport_builds_and_validates(self):
        scheduler = ServiceScheduler(store=False, workers=1)
        try:
            transport = get_transport("rest", scheduler, port=0)
            assert transport.scheduler is scheduler
            assert transport.port == 0
            with pytest.raises(ValueError, match="does not accept"):
                get_transport("http", scheduler, bogus=1)
        finally:
            scheduler.shutdown()


# --------------------------------------------------------------------------- #
# Scheduler core
# --------------------------------------------------------------------------- #

class TestScheduler:
    def test_run_spec_executes_and_streams_events(self):
        with ServiceScheduler(store=False, workers=1) as scheduler:
            events = list(scheduler.submit(tiny_run()).events())
        assert [e["event"] for e in events] == ["start", "cell", "done"]
        assert events[0]["total"] == 1
        assert events[1]["source"] == "executed"
        assert events[1]["record"]["strategy"] == "b-tctp"
        assert events[-1] == {"event": "done", "total": 1, "executed": 1,
                              "store": 0, "coalesced": 0, "failed": 0}

    def test_records_byte_identical_to_campaign_run(self):
        spec = tiny_campaign()
        with ServiceScheduler(store=False, workers=2) as scheduler:
            served = scheduler.submit(spec).records()
        direct = Campaign(spec).run(store=False).records
        assert canonical(served) == canonical(direct)

    def test_mapping_specs_accepted(self):
        payload = json.loads(tiny_run().to_json())
        with ServiceScheduler(store=False, workers=1) as scheduler:
            ticket = scheduler.submit(payload)
            assert len(ticket) == 1
            assert ticket.records()[0]["strategy"] == "b-tctp"

    def test_invalid_spec_rejected_before_admission(self):
        with ServiceScheduler(store=False, workers=1) as scheduler:
            with pytest.raises(ValueError):
                scheduler.submit({"kind": "run", "strategy": "nope-strategy"})
            assert scheduler.stats()["requests"] == 0

    def test_store_hits_skip_execution(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_campaign()
        with ServiceScheduler(store=store, workers=2) as scheduler:
            cold = scheduler.submit(spec).records()
            warm_events = list(scheduler.submit(spec).events())
            stats = scheduler.stats()
        assert stats["executed"] == len(cold)
        assert stats["store_hits"] == len(cold)
        assert all(e["source"] == "store"
                   for e in warm_events if e["event"] == "cell")
        warm = [e["record"] for e in warm_events if e["event"] == "cell"]
        assert canonical(warm) == canonical(cold)

    def test_lookup_states(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_run()
        # the daemon keys cells by their *expanded* fingerprint (replication
        # label + strategy defaults), exactly as `repro-patrol run` stores them
        fingerprint = run_fingerprint(Campaign(spec).cells()[0])
        with ServiceScheduler(store=store, workers=1) as scheduler:
            assert scheduler.lookup(fingerprint) is None
            ticket = scheduler.submit(spec)
            assert ticket.fingerprints() == [fingerprint]
            ticket.records()
            found = scheduler.lookup(fingerprint)
        assert found["status"] == "stored"
        assert found["strategy"] == "b-tctp"
        assert found["record"]["seed"] == 0

    def test_lookup_reports_inflight(self):
        release = threading.Event()

        def slow_runner(spec, store=None):
            release.wait(timeout=30)
            return {"seed": spec.seed}, "executed"

        scheduler = ServiceScheduler(store=False, workers=1, cell_runner=slow_runner)
        try:
            ticket = scheduler.submit(tiny_run())
            fingerprint = ticket.fingerprints()[0]
            assert scheduler.lookup(fingerprint) == {"fingerprint": fingerprint,
                                                     "status": "in-flight"}
        finally:
            release.set()
            scheduler.shutdown()
        assert ticket.records()[0] == {"seed": 0}

    def test_closed_scheduler_rejects_work(self):
        scheduler = ServiceScheduler(store=False, workers=1)
        scheduler.shutdown()
        with pytest.raises(ServiceClosed):
            scheduler.submit(tiny_run())
        assert scheduler.stats()["accepting"] is False

    def test_failed_cell_streams_error_and_continues(self):
        def flaky_runner(spec, store=None):
            if spec.seed == 0:
                raise RuntimeError("boom")
            return {"seed": spec.seed}, "executed"

        spec = CampaignSpec(base=tiny_run(), replications=2)
        with ServiceScheduler(store=False, workers=1,
                              cell_runner=flaky_runner) as scheduler:
            events = list(scheduler.submit(spec).events())
            kinds = [e["event"] for e in events]
            assert kinds == ["start", "error", "cell", "done"]
            assert "RuntimeError: boom" in events[1]["message"]
            assert events[-1]["failed"] == 1 and events[-1]["executed"] == 1
            # a failed fingerprint leaves the in-flight table, so a retry
            # re-executes instead of coalescing onto the dead future
            retry = list(scheduler.submit(spec).events())
            assert [e["event"] for e in retry] == ["start", "error", "cell", "done"]
            assert scheduler.stats()["coalesced"] == 0

    def test_validation_guards(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceScheduler(store=False, workers=0)
        with pytest.raises(ValueError, match="queue_limit"):
            ServiceScheduler(store=False, workers=1, queue_limit=0)


class TestCoalescing:
    def test_concurrent_identical_requests_execute_once(self):
        release = threading.Event()
        calls = []
        lock = threading.Lock()

        def slow_runner(spec, store=None):
            with lock:
                calls.append(run_fingerprint(spec))
            release.wait(timeout=30)
            return {"seed": spec.seed}, "executed"

        scheduler = ServiceScheduler(store=False, workers=2, cell_runner=slow_runner)
        try:
            spec = tiny_run()
            tickets = [scheduler.submit(spec) for _ in range(3)]
            release.set()
            streams = [list(t.events()) for t in tickets]
        finally:
            release.set()
            scheduler.shutdown()
        assert len(calls) == 1  # exactly one execution for three requests
        # every subscriber still receives the full stream
        for index, stream in enumerate(streams):
            assert [e["event"] for e in stream] == ["start", "cell", "done"]
            assert stream[1]["record"] == {"seed": 0}
            assert stream[1]["source"] == ("executed" if index == 0 else "coalesced")
        stats = scheduler.stats()
        assert stats["executed"] == 1 and stats["coalesced"] == 2

    def test_duplicate_cells_within_one_request_coalesce(self):
        calls = []

        def counting_runner(spec, store=None):
            calls.append(run_fingerprint(spec))
            return {"seed": spec.seed}, "executed"

        # replications=1 with a 2-strategy grid plus a duplicated strategy
        # value yields two identical cells in one campaign.
        spec = CampaignSpec(base=tiny_run(),
                            grid={"strategy": ["b-tctp", "b-tctp"]},
                            replications=1)
        with ServiceScheduler(store=False, workers=1,
                              cell_runner=counting_runner) as scheduler:
            records = scheduler.submit(spec).records()
        assert len(records) == 2 and records[0] == records[1]
        assert len(calls) == 1

    def test_queue_overflow_rejected_whole_with_retry_after(self):
        release = threading.Event()

        def slow_runner(spec, store=None):
            release.wait(timeout=30)
            return {"seed": spec.seed}, "executed"

        scheduler = ServiceScheduler(store=False, workers=1, queue_limit=1,
                                     retry_after=7.0, cell_runner=slow_runner)
        try:
            first = scheduler.submit(tiny_run(seed=0))  # fills the queue
            with pytest.raises(ServiceOverloaded) as excinfo:
                scheduler.submit(tiny_run(seed=1))
            assert excinfo.value.retry_after == 7.0
            assert "retry after 7s" in str(excinfo.value)
            # an identical request coalesces instead of being rejected
            coalesced = scheduler.submit(tiny_run(seed=0))
            assert scheduler.stats()["rejected"] == 1
            release.set()
            assert first.records() == coalesced.records() == [{"seed": 0}]
        finally:
            release.set()
            scheduler.shutdown()
        # after the drain the queue is free again
        assert scheduler.stats()["pending"] == 0

    def test_overflow_rejects_before_enqueuing_anything(self):
        release = threading.Event()

        def slow_runner(spec, store=None):
            release.wait(timeout=30)
            return {"seed": spec.seed}, "executed"

        scheduler = ServiceScheduler(store=False, workers=1, queue_limit=2,
                                     cell_runner=slow_runner)
        try:
            scheduler.submit(tiny_run(seed=0))
            # 2 fresh cells against 1 free slot: the whole request bounces,
            # neither cell is admitted.
            with pytest.raises(ServiceOverloaded):
                scheduler.submit(CampaignSpec(base=tiny_run(seed=10),
                                              replications=2))
            stats = scheduler.stats()
            assert stats["pending"] == 1 and stats["inflight"] == 1
        finally:
            release.set()
            scheduler.shutdown()


class TestConcurrentCampaigns:
    def test_two_threads_same_campaign_zero_duplicate_executions(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        executed = []
        lock = threading.Lock()

        def counting_runner(spec, store=None):
            record, source = execute_cell(spec, store=store)
            if source == "executed":
                with lock:
                    executed.append(run_fingerprint(spec))
            return record, source

        spec = tiny_campaign()
        scheduler = ServiceScheduler(store=store, workers=4, queue_limit=32,
                                     cell_runner=counting_runner)
        results = [None, None]

        def submit(slot):
            results[slot] = scheduler.submit(spec).records()

        threads = [threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        scheduler.shutdown()

        assert len(executed) == len(set(executed)), "a fingerprint executed twice"
        assert len(executed) == len(spec.cells())
        first, second = canonical(results[0]), canonical(results[1])
        assert first == second
        # and byte-identical to a store-less CLI-style execution
        assert first == canonical(Campaign(spec).run(store=False).records)

    def test_shutdown_drains_finished_cells_to_store(self, tmp_path):
        store_root = tmp_path / "store"
        spec = tiny_campaign()
        scheduler = ServiceScheduler(store=ResultStore(store_root), workers=2)
        ticket = scheduler.submit(spec)
        scheduler.shutdown(wait=True)  # drain: every admitted cell finishes
        assert all(r is not None for r in ticket.records())
        # a fresh scheduler on the same root serves everything from the store
        with ServiceScheduler(store=ResultStore(store_root), workers=1) as fresh:
            events = list(fresh.submit(spec).events())
        assert events[-1]["store"] == len(spec.cells())
        assert events[-1]["executed"] == 0


# --------------------------------------------------------------------------- #
# Stdio transport
# --------------------------------------------------------------------------- #

class TestStdioTransport:
    def test_round_trip(self):
        from repro.service.stdio import StdioTransport

        request = json.loads(tiny_run().to_json())
        lines = "\n".join([json.dumps(request), json.dumps({"op": "stats"})]) + "\n"
        output = io.StringIO()
        scheduler = ServiceScheduler(store=False, workers=1)
        StdioTransport(scheduler, input_stream=io.StringIO(lines),
                       output_stream=output).serve_forever()
        emitted = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [e["event"] for e in emitted] == ["start", "cell", "done", "stats"]
        assert emitted[1]["record"]["strategy"] == "b-tctp"
        assert emitted[3]["stats"]["executed"] == 1
        assert scheduler.stats()["accepting"] is False  # EOF drained the scheduler

    def test_bad_lines_do_not_kill_the_session(self):
        from repro.service.stdio import StdioTransport

        lines = "not json\n" + json.dumps({"op": "bogus"}) + "\n" \
            + json.dumps({"kind": "run", "strategy": "nope"}) + "\n" \
            + json.dumps({"op": "lookup", "fingerprint": "ffff"}) + "\n"
        output = io.StringIO()
        StdioTransport(ServiceScheduler(store=False, workers=1),
                       input_stream=io.StringIO(lines),
                       output_stream=output).serve_forever()
        emitted = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(emitted) == 4
        assert all(e.get("event") == "error" for e in emitted[:3])
        assert emitted[3] == {"fingerprint": "ffff", "status": "unknown"}


# --------------------------------------------------------------------------- #
# Runner: execute_cell and the cancellable/observable campaign entry point
# --------------------------------------------------------------------------- #

class TestExecuteCell:
    def test_without_store_always_executes(self):
        record, source = execute_cell(tiny_run())
        assert source == "executed"
        assert record["strategy"] == "b-tctp"

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_run()
        cold, cold_source = execute_cell(spec, store=store)
        warm, warm_source = execute_cell(spec, store=store)
        assert (cold_source, warm_source) == ("executed", "store")
        assert canonical([cold]) == canonical([warm])
        assert store.contains(run_fingerprint(spec))


class TestCancellableCampaign:
    def test_on_record_observes_every_cell_in_order(self):
        seen = []
        result = Campaign(tiny_campaign()).run(
            store=False, on_record=lambda index, record: seen.append(index))
        assert seen == list(range(len(result.records)))
        assert "cancelled" not in result.metadata

    def test_cancel_stops_between_cells(self):
        done = []

        result = Campaign(tiny_campaign(replications=4)).run(
            store=False,
            on_record=lambda index, record: done.append(index),
            cancel=lambda: len(done) >= 3,
        )
        assert result.metadata["cancelled"] is True
        assert len(result.records) == 3

    def test_cancel_with_store_keeps_finished_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_campaign(replications=4)
        done = []
        partial = Campaign(spec).run(
            store=store,
            on_record=lambda index, record: done.append(index),
            cancel=lambda: len(done) >= 2,
        )
        assert partial.metadata["cancelled"] is True
        # resuming executes only the remainder, and the full result is
        # byte-identical to an uninterrupted run
        full = Campaign(spec).run(store=store)
        assert full.metadata["store"]["hits"] == len(partial.records)
        cold = Campaign(spec).run(store=False)
        assert canonical(full.records) == canonical(cold.records)
