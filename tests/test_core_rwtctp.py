"""Unit tests for repro.core.rwtctp (Section IV algorithm)."""

import pytest

from repro.core.plan import AlternatingLoopRoute
from repro.core.rwtctp import build_weighted_recharge_path, plan_rwtctp
from repro.core.wtctp import build_weighted_patrolling_path
from repro.energy.model import patrolling_rounds
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.validation import validate_walk_visits, validate_weighted_recharge_path
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.workloads.scenarios import grid_scenario


@pytest.fixture
def wpp_and_weights(recharge_scenario):
    tour = build_hamiltonian_circuit(recharge_scenario.patrol_points(), start="sink")
    weights = recharge_scenario.weights()
    wpp, _walk = build_weighted_patrolling_path(tour, weights, "shortest")
    return wpp, weights


class TestBuildWRP:
    def test_station_inserted(self, wpp_and_weights, recharge_scenario):
        wpp, weights = wpp_and_weights
        station = recharge_scenario.recharge_station
        wrp, walk = build_weighted_recharge_path(wpp, weights, station.id, station.position,
                                                 walk_start="sink")
        validate_weighted_recharge_path(wrp, weights, station.id)
        assert station.id in walk

    def test_wrp_longer_than_wpp(self, wpp_and_weights, recharge_scenario):
        wpp, weights = wpp_and_weights
        station = recharge_scenario.recharge_station
        wrp, _ = build_weighted_recharge_path(wpp, weights, station.id, station.position,
                                              walk_start="sink")
        assert wrp.length() >= wpp.length()

    def test_wpp_not_mutated(self, wpp_and_weights, recharge_scenario):
        wpp, weights = wpp_and_weights
        before = wpp.length()
        station = recharge_scenario.recharge_station
        build_weighted_recharge_path(wpp, weights, station.id, station.position, walk_start="sink")
        assert wpp.length() == pytest.approx(before)
        assert station.id not in wpp

    def test_break_edge_minimises_exp3(self, wpp_and_weights, recharge_scenario):
        """The added length equals the minimum of Exp. (3) over all candidate edges."""
        wpp, weights = wpp_and_weights
        station = recharge_scenario.recharge_station
        r = station.position
        best = min(
            wpp.point(u).distance_to(r) + wpp.point(v).distance_to(r)
            - wpp.point(u).distance_to(wpp.point(v))
            for u, v, _k in wpp.edges()
        )
        wrp, _ = build_weighted_recharge_path(wpp, weights, station.id, r, walk_start="sink")
        assert wrp.length() - wpp.length() == pytest.approx(best)

    def test_station_visited_once_per_lap(self, wpp_and_weights, recharge_scenario):
        wpp, weights = wpp_and_weights
        station = recharge_scenario.recharge_station
        _wrp, walk = build_weighted_recharge_path(wpp, weights, station.id, station.position,
                                                  walk_start="sink")
        combined = dict(weights)
        combined[station.id] = 1
        validate_walk_visits(walk, combined)


class TestPlanner:
    def test_requires_recharge_station(self, simple_scenario):
        with pytest.raises(ValueError):
            plan_rwtctp(simple_scenario)

    def test_requires_batteries(self):
        sc = grid_scenario(rows=2, cols=3, num_mules=2, with_recharge_station=True)
        with pytest.raises(ValueError):
            plan_rwtctp(sc)

    def test_routes_are_alternating(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        assert all(isinstance(r, AlternatingLoopRoute) for r in plan.routes.values())

    def test_rounds_match_equation_4(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        capacity = min(m.battery.capacity for m in recharge_scenario.mules)
        expected = max(
            patrolling_rounds(capacity, plan.metadata["wpp_length"],
                              recharge_scenario.num_targets,
                              recharge_scenario.params.energy_model),
            1,
        )
        assert plan.metadata["patrol_rounds"] == expected

    def test_metadata_lengths(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        assert plan.metadata["wrp_length"] >= plan.metadata["wpp_length"]
        assert plan.metadata["recharge_station"] == "recharge"

    def test_treat_targets_as_vips_flag(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario, treat_targets_as_vips=True, vip_weight=2)
        # promoting every target to weight 2 doubles (roughly) the walk node count
        base = plan_rwtctp(recharge_scenario)
        assert len(plan.routes["m1"].patrol_loop) > len(base.routes["m1"].patrol_loop)

    def test_policy_forwarded(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario, policy="shortest")
        assert "shortest" in plan.strategy


class TestSimulatedBehaviour:
    def test_mules_survive_with_recharge(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        horizon = 60_000.0
        result = PatrolSimulator(recharge_scenario, plan, SimulationConfig(horizon=horizon)).run()
        assert result.dead_mules() == []
        assert sum(t.recharges for t in result.traces.values()) >= 1

    def test_wtctp_dies_without_recharge_on_same_scenario(self, recharge_scenario):
        """Baseline check: the same battery without RW-TCTP's recharge detour runs dry."""
        from repro.core.wtctp import plan_wtctp

        plan = plan_wtctp(recharge_scenario)
        result = PatrolSimulator(recharge_scenario.fresh_copy(), plan,
                                 SimulationConfig(horizon=60_000)).run()
        assert len(result.dead_mules()) > 0

    def test_recharge_station_visits_recorded_as_non_target(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        result = PatrolSimulator(recharge_scenario, plan, SimulationConfig(horizon=60_000)).run()
        station_visits = [v for v in result.visits if v.node_id == "recharge"]
        assert station_visits
        assert all(not v.is_target for v in station_visits)

    def test_energy_never_observably_negative(self, recharge_scenario):
        plan = plan_rwtctp(recharge_scenario)
        PatrolSimulator(recharge_scenario, plan, SimulationConfig(horizon=60_000)).run()
        for mule in recharge_scenario.mules:
            assert mule.battery.remaining >= 0.0
