"""Tests for the experiment harness (quick-sized runs of every figure reproduction).

These tests check the *shape* claims of the paper's figures on small but real
experiment runs — they are the automated counterpart of EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    replicate_seeds,
    run_ablation_init,
    run_ablation_mules,
    run_ablation_tsp,
    run_energy_experiment,
    run_fig10,
    run_fig7,
    run_fig8,
    run_fig9,
)
from repro.experiments.common import run_strategy_on_scenario
from repro.workloads.generator import uniform_scenario

QUICK = ExperimentSettings.quick(replications=2, horizon=20_000.0, num_targets=10, num_mules=3)


class TestSettings:
    def test_default_matches_paper_protocol(self):
        assert ExperimentSettings().replications == 20

    def test_quick_overrides(self):
        s = ExperimentSettings.quick(replications=5)
        assert s.replications == 5
        assert s.horizon < ExperimentSettings().horizon

    def test_replicate_seeds_deterministic_and_distinct(self):
        s = ExperimentSettings.quick(replications=4)
        seeds = replicate_seeds(s)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4
        assert seeds == replicate_seeds(s)

    def test_scenario_config_overrides(self):
        cfg = QUICK.scenario_config(num_vips=2, vip_weight=3)
        assert cfg.num_vips == 2
        assert cfg.num_targets == QUICK.num_targets


class TestRunStrategyHelper:
    def test_accepts_name_or_instance(self):
        sc = uniform_scenario(num_targets=8, num_mules=2, seed=1)
        by_name = run_strategy_on_scenario("chb", sc, horizon=10_000)
        assert by_name.strategy == "CHB"
        from repro.baselines.chb import CHBPlanner

        by_instance = run_strategy_on_scenario(CHBPlanner(), sc, horizon=10_000)
        assert by_instance.strategy == "CHB"

    def test_does_not_mutate_input_scenario(self):
        sc = uniform_scenario(num_targets=8, num_mules=2, seed=1)
        positions_before = [m.position for m in sc.mules]
        run_strategy_on_scenario("b-tctp", sc, horizon=10_000)
        assert [m.position for m in sc.mules] == positions_before


class TestFig7:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig7(QUICK)

    def test_all_strategies_present(self, data):
        assert set(data["series"]) == {"random", "sweep", "chb", "b-tctp"}

    def test_series_length(self, data):
        assert all(len(s) == 41 for s in data["series"].values())

    def test_tctp_is_flat(self, data):
        """The paper: 'its DCDT keeps a constant value'."""
        assert data["dcdt_spread"]["b-tctp"] < 0.05 * data["average_dcdt"]["b-tctp"]

    def test_random_fluctuates_more_than_tctp(self, data):
        assert data["dcdt_spread"]["random"] > data["dcdt_spread"]["b-tctp"]

    def test_random_has_largest_average_dcdt(self, data):
        avg = data["average_dcdt"]
        assert avg["random"] == max(avg.values())

    def test_chb_spread_exceeds_tctp(self, data):
        assert data["dcdt_spread"]["chb"] > data["dcdt_spread"]["b-tctp"]


class TestFig8:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig8(QUICK, target_counts=(8, 12), mule_counts=(2, 4))

    def test_grid_complete(self, data):
        assert set(data["grid"]["b-tctp"]) == {(8, 2), (8, 4), (12, 2), (12, 4)}

    def test_tctp_sd_is_zero_everywhere(self, data):
        """The paper: 'the SD of the proposed TCTP always keeps zero'."""
        for value in data["grid"]["b-tctp"].values():
            assert value == pytest.approx(0.0, abs=1e-6)

    def test_chb_sd_positive_everywhere(self, data):
        for value in data["grid"]["chb"].values():
            assert value > 0.0

    def test_rows_match_grid(self, data):
        for row in data["rows"]:
            h, n, chb_sd, tctp_sd = row
            assert data["grid"]["chb"][(h, n)] == pytest.approx(chb_sd)
            assert data["grid"]["b-tctp"][(h, n)] == pytest.approx(tctp_sd)


class TestFig9:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig9(QUICK, vip_counts=(1, 2), vip_weights=(2, 3))

    def test_both_policies_reported(self, data):
        assert set(data["dcdt"]) == {"shortest", "balanced"}

    def test_dcdt_increases_with_weight(self, data):
        for policy in data["policies"]:
            assert data["dcdt"][policy][(1, 3)] > data["dcdt"][policy][(1, 2)]

    def test_shortest_has_smaller_wpp_than_balanced(self, data):
        for key in data["wpp_length"]["shortest"]:
            assert data["wpp_length"]["shortest"][key] <= data["wpp_length"]["balanced"][key] + 1e-6

    def test_shortest_dcdt_not_larger_than_balanced(self, data):
        """The paper: 'the Shortest-Length Policy has smaller DCDT'."""
        for key in data["dcdt"]["shortest"]:
            assert data["dcdt"]["shortest"][key] <= data["dcdt"]["balanced"][key] + 1e-6


class TestFig10:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig10(QUICK, vip_counts=(1, 2), vip_weights=(2, 3))

    def test_balanced_sd_below_shortest(self, data):
        """The paper: the Balancing-Length policy keeps the SD small."""
        shortest_total = sum(data["sd"]["shortest"].values())
        balanced_total = sum(data["sd"]["balanced"].values())
        assert balanced_total < shortest_total

    def test_rows_shape(self, data):
        assert all(len(row) == 4 for row in data["rows"])


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def data(self):
        return run_energy_experiment(
            ExperimentSettings.quick(replications=2, horizon=30_000.0, num_targets=8, num_mules=2),
            battery_capacities=(60_000.0,),
        )

    def test_rwtctp_survival_not_worse(self, data):
        detail = data["detail"][60_000.0]
        assert detail["RW-TCTP"]["survival"] >= detail["W-TCTP"]["survival"]

    def test_rwtctp_recharges(self, data):
        assert data["detail"][60_000.0]["RW-TCTP"]["recharges"] > 0

    def test_wtctp_mules_eventually_die(self, data):
        assert data["detail"][60_000.0]["W-TCTP"]["survival"] < 1.0

    def test_rwtctp_delivers_at_least_as_much_data(self, data):
        detail = data["detail"][60_000.0]
        assert detail["RW-TCTP"]["delivered"] >= detail["W-TCTP"]["delivered"]


class TestAblations:
    def test_ablation_init_shows_initialization_matters(self):
        data = run_ablation_init(QUICK, mule_counts=(3,))
        row = data["rows"][0]
        _n, sd_with, sd_without, _d1, _d2 = row
        assert sd_with == pytest.approx(0.0, abs=1e-6)
        assert sd_without > sd_with

    def test_ablation_mules_reports_measured_and_predicted(self):
        data = run_ablation_mules(
            ExperimentSettings.quick(replications=1, horizon=40_000.0, num_targets=10),
            mule_counts=(1, 2), num_vips=1, vip_weight=2,
        )
        assert len(data["rows"]) == 2
        detail = data["detail"]
        for n in (1, 2):
            for policy in ("shortest", "balanced"):
                entry = detail[n][policy]
                assert entry["measured"] >= 0.0
                assert entry["predicted"] >= 0.0
        # with a single mule the balanced policy's VIP SD prediction is the smaller one
        assert detail[1]["balanced"]["predicted"] <= detail[1]["shortest"]["predicted"] + 1e-6

    def test_ablation_tsp_reports_all_variants(self):
        data = run_ablation_tsp(
            ExperimentSettings.quick(replications=1, horizon=15_000.0, num_targets=10, num_mules=2),
            target_counts=(10,),
            simulate=False,
        )
        assert len(data["rows"]) == len(data["variants"])
        lengths = {label: length for _h, label, length, _d in data["rows"]}
        # 2-opt never worsens the nearest-neighbour tour
        assert lengths["nn+2opt"] <= lengths["nearest-neighbor"] + 1e-6
