"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.strategy == "b-tctp"
        assert args.targets == 20

    def test_fig_commands_exist(self):
        parser = build_parser()
        for cmd in ("fig7", "fig8", "fig9", "fig10", "energy", "ablation-init", "ablation-tsp"):
            args = parser.parse_args([cmd, "--quick"])
            assert args.command == cmd
            assert args.quick is True

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--strategy", "nope"])


class TestStrategiesCommand:
    def test_lists_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "b-tctp" in out and "chb" in out
        # the listing shows the pipeline composition of each strategy
        assert "hamiltonian | none | as-built | equal-spacing" in out

    def test_json_output(self, capsys):
        assert main(["strategies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {s["name"]: s for s in payload["strategies"]}
        assert "rw-tctp" in by_name
        assert by_name["rw-tctp"]["aliases"] == ["rwtctp"]
        assert "policy" in by_name["rw-tctp"]["params"]
        assert by_name["w-tctp"]["composition"]["augment"]["name"] == "wpp"
        # the new cross-combined strategies are listed too
        assert {"sw-tctp", "cb-tctp", "crw-tctp", "pipeline"} <= set(by_name)


class TestScenariosCommand:
    def test_lists_families_with_params(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for family in ("uniform", "clustered", "corridor", "hotspot", "ring",
                       "grid-jitter", "mixed-density", "figure1"):
            assert family in out
        assert "num_targets=20" in out

    def test_json_output(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {f["name"]: f for f in payload["families"]}
        assert "ring" in by_name
        assert by_name["ring"]["description"]
        params = {p["name"]: p for p in by_name["ring"]["params"]}
        assert params["ring_radius"]["default"] == 300.0


class TestScenarioOption:
    def test_simulate_with_scenario_family(self, capsys):
        code = main(["simulate", "--scenario", "ring:num_targets=8,ring_radius=200",
                     "--strategy", "b-tctp", "--seed", "1", "--horizon", "8000",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "ring"
        assert payload["num_targets"] == 8

    def test_simulate_unknown_family_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "voronoi"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err

    def test_simulate_typoed_param_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "ring:radius=10"]) == 2
        assert "does not accept" in capsys.readouterr().err

    def test_simulate_malformed_param_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "ring:num_targets"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_simulate_non_numeric_value_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "ring:num_targets=abc"]) == 2
        assert "error:" in capsys.readouterr().err


class TestParamOption:
    BASE = ["simulate", "--targets", "6", "--mules", "2", "--horizon", "5000", "--json"]

    def test_pipeline_strategy_with_stage_params(self, capsys):
        code = main(self.BASE + ["--strategy", "pipeline",
                                 "--param", "tour=cluster-first",
                                 "--param", "order=reversed"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "Pipeline[cluster-first|none|reversed|equal-spacing]"

    def test_augment_none_is_the_noop_backend(self, capsys):
        # 'none' parses to Python None at the CLI layer; it must still mean
        # the augment backend literally named "none"
        code = main(self.BASE + ["--strategy", "pipeline", "--param", "augment=none"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "|none|" in payload["strategy"]

    def test_pipeline_recharge_autoprovisions_station(self, capsys):
        # composition-based recharge detection must honour --param overrides
        code = main(self.BASE + ["--strategy", "pipeline",
                                 "--param", "augment=recharge",
                                 "--param", "order=ccw-angle"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"].startswith("Pipeline[hamiltonian|recharge")

    def test_incompatible_stages_clean_error(self, capsys):
        code = main(self.BASE + ["--strategy", "pipeline",
                                 "--param", "augment=wpp", "--param", "order=as-built"])
        assert code == 2
        assert "cannot traverse a weighted structure" in capsys.readouterr().err

    def test_stage_typo_clean_error_with_suggestion(self, capsys):
        code = main(self.BASE + ["--strategy", "pipeline", "--param", "tour=hamiltonain"])
        assert code == 2
        assert "did you mean 'hamiltonian'" in capsys.readouterr().err

    def test_out_of_range_param_clean_error(self, capsys):
        code = main(self.BASE + ["--strategy", "cb-tctp", "--param", "num_clusters=-5"])
        assert code == 2
        assert "num_clusters" in capsys.readouterr().err

    def test_malformed_param_clean_error(self, capsys):
        code = main(self.BASE + ["--strategy", "b-tctp", "--param", "tsp_method"])
        assert code == 2
        assert "key=value" in capsys.readouterr().err

    def test_sweep_non_numeric_value_clean_error(self, capsys):
        code = main(["sweep", "--scenario", "ring:ring_width=-5x",
                     "--strategies", "b-tctp", "--replications", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_with_scenario_family(self, capsys):
        code = main(["sweep", "--scenario", "corridor:num_targets=6,num_mules=2",
                     "--strategies", "b-tctp,chb", "--replications", "2",
                     "--horizon", "6000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 4
        assert payload["spec"]["base"]["scenario"]["family"] == "corridor"

    def test_sweep_bad_scenario_clean_error(self, capsys):
        code = main(["sweep", "--scenario", "clustered:cluster_radius=500",
                     "--strategies", "b-tctp", "--replications", "1"])
        assert code == 2
        assert "cluster_radius" in capsys.readouterr().err


class TestSimulateCommand:
    def test_btctp_table_output(self, capsys):
        code = main(["simulate", "--strategy", "b-tctp", "--targets", "8", "--mules", "2",
                     "--seed", "1", "--horizon", "15000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_dcdt" in out
        assert "B-TCTP" in out

    def test_json_output_is_parseable(self, capsys):
        code = main(["simulate", "--strategy", "chb", "--targets", "8", "--mules", "2",
                     "--seed", "1", "--horizon", "15000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_targets"] == 8
        assert payload["average_dcdt"] > 0

    def test_wtctp_policy_flag(self, capsys):
        code = main(["simulate", "--strategy", "w-tctp", "--policy", "shortest", "--targets", "8",
                     "--mules", "2", "--vips", "1", "--seed", "1", "--horizon", "15000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "shortest" in payload["strategy"]

    def test_rwtctp_gets_recharge_station_automatically(self, capsys):
        code = main(["simulate", "--strategy", "rw-tctp", "--targets", "6", "--mules", "2",
                     "--seed", "2", "--horizon", "20000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dead_mules"] == []

    def test_random_strategy_seeded(self, capsys):
        code = main(["simulate", "--strategy", "random", "--targets", "6", "--mules", "2",
                     "--seed", "3", "--horizon", "10000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["average_sd"] > 0


class TestSweepCommand:
    def test_sweep_json_records(self, capsys):
        code = main(["sweep", "--strategies", "b-tctp,sweep", "--replications", "2",
                     "--targets", "8", "--mules", "2", "--horizon", "8000",
                     "--workers", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 4
        strategies = {r["strategy"] for r in payload["records"]}
        assert strategies == {"b-tctp", "sweep"}
        assert payload["spec"]["kind"] == "campaign"

    def test_sweep_table_output(self, capsys):
        code = main(["sweep", "--strategies", "chb", "--replications", "2",
                     "--targets", "6", "--mules", "2", "--horizon", "6000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Summary over replications" in out
        assert "chb" in out

    def test_sweep_unknown_strategy_clean_error(self, capsys):
        code = main(["sweep", "--strategies", "b-tctp,frobnicate", "--replications", "1"])
        assert code == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_sweep_empty_strategies_clean_error(self, capsys):
        for raw in (",", ""):
            code = main(["sweep", "--strategies", raw, "--replications", "1"])
            assert code == 2
            assert "at least one strategy" in capsys.readouterr().err

    def test_sweep_spec_out_round_trips(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        code = main(["sweep", "--strategies", "b-tctp,chb", "--replications", "3",
                     "--targets", "6", "--mules", "2", "--horizon", "6000",
                     "--spec-out", str(spec_path)])
        assert code == 0
        from repro.runner import CampaignSpec, load_spec

        spec = load_spec(spec_path)
        assert isinstance(spec, CampaignSpec)
        assert spec.replications == 3
        assert spec.grid["strategy"] == ["b-tctp", "chb"]


class TestRunCommand:
    def test_run_spec_file(self, tmp_path, capsys):
        from repro.runner import CampaignSpec, RunSpec
        from repro.sim.engine import SimulationConfig
        from repro.workloads.generator import ScenarioConfig

        spec = CampaignSpec(
            base=RunSpec(strategy="b-tctp",
                         scenario=ScenarioConfig(num_targets=6, num_mules=2,
                                                 mule_placement="random"),
                         sim=SimulationConfig(horizon=6000.0, track_energy=False)),
            grid={"strategy": ["chb", "b-tctp"]},
            replications=2,
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        out_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"

        code = main(["run", str(spec_path), "--json",
                     "--out", str(out_path), "--csv", str(csv_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 4
        assert json.loads(out_path.read_text())["records"] == payload["records"]
        assert csv_path.read_text().startswith("strategy,")

    def test_run_missing_or_invalid_spec_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

        bad = tmp_path / "bad.json"
        bad.write_text('{"strategy": "chb", "frobnicate": 1}')
        assert main(["run", str(bad)]) == 2
        assert "unknown run spec field" in capsys.readouterr().err

    def test_run_single_spec_typoed_param_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "typo.json"
        spec.write_text('{"kind": "run", "strategy": "w-tctp", "params": {"polcy": "shortest"}}')
        assert main(["run", str(spec)]) == 2
        assert "polcy" in capsys.readouterr().err

    def test_run_single_run_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        spec_path.write_text(json.dumps({
            "kind": "run",
            "strategy": "chb",
            "scenario": {"num_targets": 6, "num_mules": 2, "mule_placement": "random"},
            "sim": {"horizon": 6000.0, "track_energy": False},
            "seed": 5,
        }))
        code = main(["run", str(spec_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 1
        assert payload["records"][0]["seed"] == 5


class TestFigureCommands:
    def test_fig8_quick_runs_and_prints_table(self, capsys):
        code = main(["fig8", "--quick", "--replications", "1", "--horizon", "12000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "SD" in out

    def test_fig9_quick_json(self, capsys):
        code = main(["fig9", "--quick", "--replications", "1", "--horizon", "12000", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["experiment"] == "fig9"

    def test_fig8_workers_flag_matches_serial(self, capsys):
        serial_code = main(["fig8", "--quick", "--replications", "2", "--horizon", "10000",
                            "--json"])
        serial_out = capsys.readouterr().out
        parallel_code = main(["fig8", "--quick", "--replications", "2", "--horizon", "10000",
                              "--workers", "2", "--json"])
        parallel_out = capsys.readouterr().out
        assert serial_code == parallel_code == 0
        serial = json.loads(serial_out[serial_out.index("{"):])
        parallel = json.loads(parallel_out[parallel_out.index("{"):])
        assert serial["grid"] == parallel["grid"]


_SWEEP_SMALL = ["sweep", "--strategies", "chb,b-tctp", "--replications", "2",
                "--targets", "6", "--mules", "2", "--horizon", "5000"]


class TestStoreFlags:
    def test_progress_prints_done_total_to_stderr(self, capsys):
        assert main([*_SWEEP_SMALL, "--progress", "--json"]) == 0
        err = capsys.readouterr().err
        assert "progress: 1/4" in err and "progress: 4/4" in err

    def test_sweep_with_store_resumes_and_reports_hits(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--progress", "--json"]) == 0
        first = capsys.readouterr()
        assert "store: 0 hits, 4 misses" in first.err
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--progress", "--json"]) == 0
        second = capsys.readouterr()
        assert "store: 4 hits, 0 misses" in second.err
        assert "progress: 4/4" in second.err
        a, b = json.loads(first.out)["records"], json.loads(second.out)["records"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_env_var_store_with_opt_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        assert main([*_SWEEP_SMALL, "--progress", "--json"]) == 0
        capsys.readouterr()
        assert main([*_SWEEP_SMALL, "--no-store", "--progress", "--json"]) == 0
        err = capsys.readouterr().err
        assert "store:" not in err          # opted out: no hits/misses line
        assert "progress: 1/4" in err       # every cell re-executed

    def test_run_spec_file_with_store(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "kind": "campaign",
            "base": {"strategy": "chb",
                     "scenario": {"family": "uniform",
                                  "params": {"num_targets": 6, "num_mules": 2}},
                     "sim": {"horizon": 5000.0, "track_energy": False}},
            "replications": 2,
        }))
        store_dir = str(tmp_path / "store")
        assert main(["run", str(spec_path), "--store", store_dir, "--progress",
                     "--json"]) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path), "--store", store_dir, "--progress",
                     "--json"]) == 0
        err = capsys.readouterr().err
        assert "store: 2 hits, 0 misses" in err


class TestStoreCommand:
    def _populate(self, tmp_path, capsys) -> str:
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        return store_dir

    def test_requires_a_configured_store(self, capsys):
        assert main(["store", "stats"]) == 2
        assert "no result store configured" in capsys.readouterr().err

    def test_stats_and_list(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        assert main(["store", "stats", "--dir", store_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 4
        assert main(["store", "list", "--dir", store_dir, "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)["entries"]
        assert len(entries) == 4
        assert {e["strategy"] for e in entries} == {"chb", "b-tctp"}
        assert main(["store", "list", "--dir", store_dir, "--strategy", "chb"]) == 0
        out = capsys.readouterr().out
        assert "chb" in out and "b-tctp" not in out

    def test_env_var_names_the_store(self, tmp_path, capsys, monkeypatch):
        store_dir = self._populate(tmp_path, capsys)
        monkeypatch.setenv("REPRO_STORE_DIR", store_dir)
        assert main(["store", "stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 4

    def test_gc_and_clear(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        assert main(["store", "gc", "--dir", store_dir]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["store", "clear", "--dir", store_dir]) == 0
        assert "removed 4 entries" in capsys.readouterr().out

    def test_export_records(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        out_json = str(tmp_path / "records.json")
        out_csv = str(tmp_path / "records.csv")
        assert main(["store", "export", "--dir", store_dir, "--strategy", "chb",
                     "--out", out_json, "--csv", out_csv]) == 0
        capsys.readouterr()
        payload = json.loads(open(out_json).read())
        assert len(payload["records"]) == 2
        assert open(out_csv).read().startswith("strategy,")

    def test_export_needs_a_destination(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        assert main(["store", "export", "--dir", store_dir]) == 2
        assert "needs --out" in capsys.readouterr().err

    def test_export_where_filter(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        out_json = str(tmp_path / "filtered.json")
        assert main(["store", "export", "--dir", store_dir,
                     "--where", "replication=1..1", "--out", out_json]) == 0
        capsys.readouterr()
        assert len(json.loads(open(out_json).read())["records"]) == 2

    def test_malformed_where_clean_error(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        assert main(["store", "export", "--dir", store_dir, "--where", "nope",
                     "--out", str(tmp_path / "x.json")]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_flags_an_action_would_ignore_are_rejected(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        # gc cannot scope deletion by strategy — refusing beats silently
        # sweeping everything.
        assert main(["store", "gc", "--dir", store_dir, "--strategy", "chb"]) == 2
        assert "--strategy does not apply to 'store gc'" in capsys.readouterr().err
        assert main(["store", "clear", "--dir", store_dir, "--where", "x=1"]) == 2
        assert "--where does not apply to 'store clear'" in capsys.readouterr().err
        assert main(["store", "list", "--dir", store_dir, "--max-age-days", "3"]) == 2
        assert "--max-age-days does not apply" in capsys.readouterr().err
        assert main(["store", "stats", "--dir", store_dir, "--limit", "2"]) == 2
        assert "--limit does not apply" in capsys.readouterr().err

    def test_list_honours_where_filters(self, tmp_path, capsys):
        store_dir = self._populate(tmp_path, capsys)
        assert main(["store", "list", "--dir", store_dir,
                     "--where", "replication=1", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)["entries"]
        assert len(entries) == 2


class TestReportCommand:
    def test_report_over_stored_records(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["report", "--dir", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 4
        groups = {g["strategy"]: g for g in payload["groups"]}
        assert set(groups) == {"chb", "b-tctp"}
        assert groups["b-tctp"]["runs"] == 2
        assert groups["b-tctp"]["mean average_sd"] == pytest.approx(0.0, abs=1e-9)

    def test_report_table_and_csv(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        csv_path = str(tmp_path / "summary.csv")
        assert main(["report", "--dir", store_dir, "--by", "strategy,seed",
                     "--metrics", "average_dcdt", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Report over 4 stored records" in out
        assert open(csv_path).read().splitlines()[0] == "strategy,seed,mean average_dcdt,runs"

    def test_no_matching_records(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["report", "--dir", store_dir, "--strategy", "sweep"]) == 1
        assert "no stored records match" in capsys.readouterr().err

    def test_unknown_metric_clean_error(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["report", "--dir", store_dir, "--metrics", "no_such_metric"]) == 2
        assert "no column" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_prints_library_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-patrol {repro.__version__}"

    def test_single_source_of_truth(self):
        # pyproject's dynamic version and the fingerprint code salt both read
        # repro.__version__; the CLI flag must never drift from them.
        import repro
        from repro.store.fingerprint import code_salt

        assert code_salt().endswith(repro.__version__)


class TestTransportsCommand:
    def test_lists_transports_with_options(self, capsys):
        assert main(["transports"]) == 0
        out = capsys.readouterr().out
        assert "http (rest)" in out
        assert "stdio (console)" in out
        assert "host=127.0.0.1" in out and "port=8422" in out

    def test_json_output(self, capsys):
        assert main(["transports", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {t["name"]: t for t in payload["transports"]}
        assert by_name["http"]["aliases"] == ["rest"]
        options = {o["name"]: o for o in by_name["http"]["options"]}
        assert options["port"] == {"name": "port", "kind": "int",
                                   "default": 8422, "required": False}
        assert by_name["stdio"]["options"] == []


class TestServeCommand:
    def test_unknown_transport_is_a_clean_error(self, capsys):
        assert main(["serve", "--transport", "htp", "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "unknown transport" in err and "did you mean 'http'" in err

    def test_bad_worker_count_is_a_clean_error(self, capsys):
        assert main(["serve", "--workers", "0", "--no-store"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_stdio_serve_round_trip(self, capsys, monkeypatch):
        """`serve --transport stdio` is a full daemon run we can drive in-process."""
        import io

        spec = {"kind": "run", "strategy": "b-tctp", "seed": 1,
                "scenario": {"family": "uniform",
                             "params": {"num_targets": 5, "num_mules": 2}},
                "sim": {"horizon": 300.0, "track_energy": False}}
        lines = json.dumps(spec) + "\n" + json.dumps({"op": "stats"}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--transport", "stdio", "--no-store"]) == 0
        captured = capsys.readouterr()
        assert "no result store (coalescing only)" in captured.err
        events = [json.loads(line) for line in captured.out.splitlines()]
        assert [e["event"] for e in events] == ["start", "cell", "done", "stats"]
        assert events[1]["record"]["strategy"] == "b-tctp"
        assert events[3]["stats"]["executed"] == 1


class TestStoreStatsFormatter:
    def test_store_stats_json_is_the_shared_payload(self, tmp_path, capsys):
        from repro.store import ResultStore
        from repro.store.report import store_stats_payload

        store_dir = str(tmp_path / "store")
        assert main([*_SWEEP_SMALL, "--store", store_dir, "--json"]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--dir", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # byte-for-byte the document the daemon's /stats endpoint embeds
        assert payload == json.loads(
            json.dumps(store_stats_payload(ResultStore(store_dir)), sort_keys=True))
        assert payload["entries"] == 4
