"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.strategy == "b-tctp"
        assert args.targets == 20

    def test_fig_commands_exist(self):
        parser = build_parser()
        for cmd in ("fig7", "fig8", "fig9", "fig10", "energy", "ablation-init", "ablation-tsp"):
            args = parser.parse_args([cmd, "--quick"])
            assert args.command == cmd
            assert args.quick is True

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--strategy", "nope"])


class TestStrategiesCommand:
    def test_lists_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "b-tctp" in out and "chb" in out

    def test_json_output(self, capsys):
        assert main(["strategies", "--json"]) == 0
        names = json.loads(capsys.readouterr().out)
        assert "rw-tctp" in names


class TestSimulateCommand:
    def test_btctp_table_output(self, capsys):
        code = main(["simulate", "--strategy", "b-tctp", "--targets", "8", "--mules", "2",
                     "--seed", "1", "--horizon", "15000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_dcdt" in out
        assert "B-TCTP" in out

    def test_json_output_is_parseable(self, capsys):
        code = main(["simulate", "--strategy", "chb", "--targets", "8", "--mules", "2",
                     "--seed", "1", "--horizon", "15000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_targets"] == 8
        assert payload["average_dcdt"] > 0

    def test_wtctp_policy_flag(self, capsys):
        code = main(["simulate", "--strategy", "w-tctp", "--policy", "shortest", "--targets", "8",
                     "--mules", "2", "--vips", "1", "--seed", "1", "--horizon", "15000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "shortest" in payload["strategy"]

    def test_rwtctp_gets_recharge_station_automatically(self, capsys):
        code = main(["simulate", "--strategy", "rw-tctp", "--targets", "6", "--mules", "2",
                     "--seed", "2", "--horizon", "20000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dead_mules"] == []

    def test_random_strategy_seeded(self, capsys):
        code = main(["simulate", "--strategy", "random", "--targets", "6", "--mules", "2",
                     "--seed", "3", "--horizon", "10000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["average_sd"] > 0


class TestFigureCommands:
    def test_fig8_quick_runs_and_prints_table(self, capsys):
        code = main(["fig8", "--quick", "--replications", "1", "--horizon", "12000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "SD" in out

    def test_fig9_quick_json(self, capsys):
        code = main(["fig9", "--quick", "--replications", "1", "--horizon", "12000", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["experiment"] == "fig9"
