"""Unit tests for repro.sim.engine (the discrete-event patrolling simulator)."""

import pytest

from repro.core.plan import LoopRoute, PatrolPlan, StochasticRoute
from repro.core.btctp import plan_btctp
from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.field import Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import RechargeStation, Sink, Target
from repro.sim.engine import PatrolSimulator, SimulationConfig


def _line_scenario(*, battery=None, with_recharge=False, collection_time=0.0):
    """Two targets on a line 100 m apart from the sink; velocity 2 m/s."""
    params = SimulationParameters(collection_time=collection_time)
    targets = [Target("g1", Point(100.0, 0.0)), Target("g2", Point(200.0, 0.0))]
    sink = Sink("sink", Point(0.0, 0.0))
    recharge = RechargeStation("recharge", Point(150.0, 0.0)) if with_recharge else None
    mule = DataMule("m1", sink.position, velocity=2.0,
                    battery=Battery(battery) if battery else None)
    return Scenario(targets=targets, sink=sink, mules=[mule], recharge_station=recharge,
                    field=Field(), params=params, name="line")


def _loop_plan(scenario, loop=("sink", "g1", "g2"), start=None, entry=0):
    coords = scenario.patrol_points(include_recharge=scenario.recharge_station is not None)
    return PatrolPlan(
        strategy="manual",
        routes={"m1": LoopRoute("m1", list(loop), coords, entry_index=entry, start=start)},
    )


class TestConfig:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            SimulationConfig(horizon=0)

    def test_invalid_max_visits(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_visits=0)

    def test_missing_route_rejected(self):
        sc = _line_scenario()
        plan = PatrolPlan(strategy="x", routes={"zzz": LoopRoute("zzz", ["sink"], sc.patrol_points())})
        with pytest.raises(ValueError):
            PatrolSimulator(sc, plan)


class TestArrivalTiming:
    def test_visit_times_follow_kinematics(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=500)).run()
        # loop sink -> g1 -> g2 -> sink...: g1 at 50 s (100 m at 2 m/s), g2 at 100 s,
        # back at sink at 200 s (200 m back), then g1 again at 250 s
        g1 = result.visit_times("g1")
        assert g1[0] == pytest.approx(50.0)
        assert g1[1] == pytest.approx(250.0)
        assert result.visit_times("g2")[0] == pytest.approx(100.0)
        assert result.visit_times("sink")[1] == pytest.approx(200.0)

    def test_horizon_respected(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=120)).run()
        assert all(v.time <= 120 for v in result.visits)

    def test_max_visits_stops_early(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=10_000, max_visits=5)).run()
        assert len([v for v in result.visits if v.is_target]) == 5

    def test_sink_visits_counted_as_target_visits(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=500)).run()
        assert "sink" in result.visited_targets()

    def test_collection_time_delays_subsequent_arrivals(self):
        fast = PatrolSimulator(_line_scenario(), _loop_plan(_line_scenario()),
                               SimulationConfig(horizon=500)).run()
        slow_sc = _line_scenario(collection_time=10.0)
        slow = PatrolSimulator(slow_sc, _loop_plan(slow_sc), SimulationConfig(horizon=500)).run()
        assert slow.visit_times("g2")[0] == pytest.approx(fast.visit_times("g2")[0] + 10.0)

    def test_distance_travelled_recorded(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=400)).run()
        # two full laps of the 400 m loop complete within 400 s at 2 m/s
        assert result.traces["m1"].distance_travelled == pytest.approx(800.0)

    def test_start_position_initialisation_leg(self):
        sc = _line_scenario()
        plan = _loop_plan(sc, start=Point(100.0, 0.0), entry=2)  # start at g1, first waypoint g2
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=500)).run()
        assert result.traces["m1"].initialization_time == pytest.approx(50.0)
        assert result.visit_times("g2")[0] == pytest.approx(100.0)


class TestDataFlow:
    def test_packets_delivered_at_sink(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=1000)).run()
        assert result.deliveries
        delivered_targets = {d.target_id for d in result.deliveries}
        assert delivered_targets == {"g1", "g2"}

    def test_delivered_size_matches_backlog(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=250)).run()
        # g1 collected at t=50 with data_rate 1.0 -> 50 units, delivered at the sink at t=200
        first = min(result.deliveries, key=lambda d: (d.target_id != "g1", d.collected_at))
        assert first.target_id == "g1"
        assert first.size == pytest.approx(50.0)
        assert first.delivered_at == pytest.approx(200.0)

    def test_collections_counted(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=500)).run()
        assert result.traces["m1"].collections == len(
            [v for v in result.visits if v.node_id in ("g1", "g2")]
        )


class TestEnergy:
    def test_energy_accounting_without_battery(self):
        sc = _line_scenario()
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=400)).run()
        distance = result.traces["m1"].distance_travelled
        expected = distance * sc.params.move_cost_per_meter + result.traces["m1"].collections * 0.075
        assert result.traces["m1"].energy_consumed == pytest.approx(expected)

    def test_mule_dies_mid_leg_when_battery_empty(self):
        # battery covers exactly 150 m of movement: dies halfway between g1 and g2
        sc = _line_scenario(battery=150.0 * 8.267 + 0.075)
        result = PatrolSimulator(sc, _loop_plan(sc), SimulationConfig(horizon=10_000)).run()
        trace = result.traces["m1"]
        assert trace.death_time is not None
        assert trace.distance_travelled == pytest.approx(150.0, rel=1e-3)
        assert result.dead_mules() == ["m1"]
        # no visits recorded after death
        assert all(v.time <= trace.death_time for v in result.visits)

    def test_track_energy_false_keeps_mule_alive(self):
        sc = _line_scenario(battery=100.0)
        result = PatrolSimulator(sc, _loop_plan(sc),
                                 SimulationConfig(horizon=2_000, track_energy=False)).run()
        assert result.dead_mules() == []

    def test_recharge_station_refills_battery(self):
        sc = _line_scenario(battery=400.0 * 8.267 + 10.0, with_recharge=True)
        plan = _loop_plan(sc, loop=("sink", "g1", "recharge", "g2"))
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=5_000)).run()
        assert result.traces["m1"].recharges >= 1
        assert result.dead_mules() == []


class TestSynchronizedStart:
    def test_barrier_applied_when_enabled(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        result = PatrolSimulator(fig1_scenario, plan, SimulationConfig(horizon=20_000)).run()
        start = result.metadata["patrol_start_time"]
        assert start > 0
        # no target visit can happen before the barrier (mules only travel to start points)
        assert min(v.time for v in result.visits) >= start

    def test_barrier_disabled(self, fig1_scenario):
        plan = plan_btctp(fig1_scenario)
        cfg = SimulationConfig(horizon=20_000, synchronized_start=False)
        result = PatrolSimulator(fig1_scenario, plan, cfg).run()
        assert result.metadata["patrol_start_time"] == 0.0


class TestStochasticRoutes:
    def test_random_route_visits_recorded(self):
        sc = _line_scenario()
        coords = sc.patrol_points()
        plan = PatrolPlan(
            strategy="random",
            routes={"m1": StochasticRoute("m1", ["g1", "g2", "sink"], coords, seed=3)},
        )
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=5_000)).run()
        assert set(result.visited_targets()) == {"g1", "g2", "sink"}

    def test_same_seed_same_result(self):
        sc = _line_scenario()
        coords = sc.patrol_points()

        def run():
            plan = PatrolPlan(
                strategy="random",
                routes={"m1": StochasticRoute("m1", ["g1", "g2", "sink"], coords, seed=3)},
            )
            return PatrolSimulator(sc.fresh_copy(), plan, SimulationConfig(horizon=2_000)).run()

        a, b = run(), run()
        assert [(v.time, v.node_id) for v in a.visits] == [(v.time, v.node_id) for v in b.visits]
