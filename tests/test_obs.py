"""Unit tests for the observability layer: registry, trace export, Prometheus.

The byte-identity proofs (records and fingerprints equal with the registry
on or off) live in ``tests/test_obs_integration.py``; this file covers the
primitives — counter/histogram/span recording, the disabled-path no-ops,
worker drain/absorb merging, the collection windows, the Chrome Trace Event
exporter (Perfetto schema check included), the JSONL span log round trip,
the Prometheus text formatter, and the unified stats document's
shape-compatible views.
"""

import json

import pytest

from repro.obs import (
    Window,
    absorb,
    chrome_trace,
    configure,
    drain,
    inc,
    obs_collected,
    obs_disabled,
    obs_enabled,
    observe,
    prometheus_text,
    read_span_log,
    reset,
    snapshot,
    span,
    spans,
    validate_trace,
    write_span_log,
    write_trace,
)
from repro.obs import registry as reg
from repro.obs.adapters import (
    cache_stats_view,
    scheduler_stats_view,
    stats_document,
    store_stats_view,
)


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts from an empty, disabled registry and restores it."""
    previous = obs_enabled()
    reset()
    configure(enabled=False)
    yield
    reset()
    configure(enabled=previous)


class TestDisabledPath:
    def test_disabled_by_default_records_nothing(self):
        inc("c", 3, kind="x")
        observe("h", 1.5)
        with span("s", cat="t"):
            pass
        doc = snapshot()
        assert doc["enabled"] is False
        assert doc["counters"] == [] and doc["histograms"] == []
        assert doc["spans"] == {"recorded": 0, "dropped": 0}

    def test_disabled_span_is_the_shared_noop(self):
        assert span("a") is span("b")  # no allocation on the disabled path

    def test_obs_disabled_context_restores(self):
        configure(enabled=True)
        with obs_disabled():
            assert not obs_enabled()
            inc("c")
        assert obs_enabled()
        assert snapshot()["counters"] == []


class TestRecording:
    def test_counters_accumulate_per_label_set(self):
        configure(enabled=True)
        inc("dispatch", outcome="fast")
        inc("dispatch", 2, outcome="fast")
        inc("dispatch", outcome="slow", reason="x")
        rows = snapshot()["counters"]
        assert rows == [
            {"name": "dispatch", "labels": {"outcome": "fast"}, "value": 3},
            {"name": "dispatch", "labels": {"outcome": "slow", "reason": "x"},
             "value": 1},
        ]

    def test_histogram_tracks_count_sum_min_max(self):
        configure(enabled=True)
        for value in (4.0, 1.0, 7.0):
            observe("rows", value)
        [hist] = snapshot()["histograms"]
        assert hist == {"name": "rows", "labels": {}, "count": 3, "sum": 12.0,
                        "min": 1.0, "max": 7.0}

    def test_span_nesting_records_explicit_parentage(self):
        configure(enabled=True)
        with span("outer", cat="test") as outer:
            with span("inner", cat="test", detail=7) as inner:
                pass
        recorded = {s["name"]: s for s in spans()}
        assert recorded["inner"]["parent"] == outer.id
        assert recorded["outer"]["parent"] is None
        assert recorded["inner"]["args"] == {"detail": 7}
        assert recorded["inner"]["dur"] >= 0
        assert inner.id != outer.id

    def test_span_cap_counts_drops(self, monkeypatch):
        configure(enabled=True)
        monkeypatch.setattr(reg, "_MAX_SPANS", 2)
        for index in range(4):
            with span(f"s{index}"):
                pass
        assert snapshot()["spans"] == {"recorded": 2, "dropped": 2}

    def test_reset_clears_everything(self):
        configure(enabled=True)
        inc("c")
        observe("h", 1.0)
        with span("s"):
            pass
        reset()
        doc = snapshot()
        assert doc["counters"] == [] and doc["histograms"] == []
        assert doc["spans"] == {"recorded": 0, "dropped": 0}


class TestDrainAbsorb:
    def test_round_trip_merges_counters_and_hists_exactly(self):
        configure(enabled=True)
        inc("c", 2, kind="a")
        observe("h", 5.0)
        payload = drain()
        assert snapshot()["counters"] == []  # drain clears
        inc("c", 1, kind="a")
        observe("h", 1.0)
        absorb(payload)
        [counter] = snapshot()["counters"]
        assert counter["value"] == 3
        [hist] = snapshot()["histograms"]
        assert hist["count"] == 2 and hist["sum"] == 6.0
        assert hist["min"] == 1.0 and hist["max"] == 5.0

    def test_absorb_rebases_and_remaps_spans(self):
        configure(enabled=True)
        with span("parent"):
            with span("child"):
                pass
        payload = drain()
        payload["now"] -= 1000.0  # pretend the worker drained 1ms ago
        absorb(payload)
        merged = {s["name"]: s for s in spans()}
        assert merged["child"]["parent"] == merged["parent"]["id"]
        assert merged["parent"]["ts"] > payload["spans"][0]["ts"]

    def test_payload_is_json_serializable(self):
        configure(enabled=True)
        inc("c", kind="a")
        with span("s"):
            pass
        observe("h", 2.0)
        round_tripped = json.loads(json.dumps(drain()))
        absorb(round_tripped)
        assert snapshot()["spans"]["recorded"] == 1


class TestWindows:
    def test_window_reports_only_the_delta(self):
        configure(enabled=True)
        inc("c", 10)
        window = Window()
        inc("c", 2)
        [counter] = window.snapshot()["counters"]
        assert counter["value"] == 2
        assert window.snapshot()["spans"]["recorded"] == 0

    def test_obs_collected_forces_on_and_restores_off(self):
        assert not obs_enabled()
        with obs_collected(enabled=True) as window:
            assert obs_enabled() and window is not None
            inc("c")
            assert window.snapshot()["counters"][0]["value"] == 1
        assert not obs_enabled()

    def test_obs_collected_yields_none_while_disabled(self):
        with obs_collected() as window:
            assert window is None


class TestChromeTrace:
    def _sample_spans(self):
        configure(enabled=True)
        with span("outer", cat="campaign", cells=2):
            with span("inner", cat="planning"):
                pass
        return spans()

    def test_document_passes_the_schema_check(self):
        document = chrome_trace(self._sample_spans())
        assert validate_trace(document) == []
        assert document["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases == ["M", "X", "X"]  # one process label, spans by ts

    def test_events_carry_span_and_parent_ids(self):
        document = chrome_trace(self._sample_spans())
        events = {e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"}
        assert events["inner"]["args"]["parent_id"] == events["outer"]["args"]["span_id"]
        assert events["outer"]["args"]["cells"] == 2

    def test_validate_trace_flags_problems(self):
        assert validate_trace({}) == ["traceEvents is missing or not a list"]
        bad = {"traceEvents": [{"ph": "X", "name": 3, "pid": 0, "tid": 0,
                                "ts": 0, "dur": -1}, {"ph": "Q"}]}
        problems = validate_trace(bad)
        assert any("name must be a string" in p for p in problems)
        assert any("dur must be non-negative" in p for p in problems)
        assert any("unexpected phase" in p for p in problems)

    def test_span_log_round_trip(self, tmp_path):
        recorded = self._sample_spans()
        log = tmp_path / "campaign.spans.jsonl"
        write_span_log(log, recorded)
        assert read_span_log(log) == recorded
        trace = tmp_path / "campaign.trace.json"
        write_trace(trace, read_span_log(log))
        assert validate_trace(json.loads(trace.read_text())) == []

    def test_span_log_rejects_malformed_lines(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        log.write_text('{"name": "s"}\n')
        with pytest.raises(ValueError, match="missing keys"):
            read_span_log(log)
        log.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_span_log(log)


class TestPrometheus:
    def test_registry_counters_and_hists_render(self):
        configure(enabled=True)
        inc("sim_dispatch", 3, outcome="fastpath")
        observe("batch_group_rows", 4.0)
        text = prometheus_text({"obs": snapshot()})
        assert 'repro_sim_dispatch_total{outcome="fastpath"} 3' in text
        assert "repro_batch_group_rows_count 1" in text
        assert "repro_batch_group_rows_sum 4" in text
        assert "# TYPE repro_sim_dispatch_total counter" in text
        assert "repro_obs_enabled 1" in text

    def test_one_help_type_header_per_metric(self):
        configure(enabled=True)
        inc("c", outcome="a")
        inc("c", outcome="b")
        text = prometheus_text({"obs": snapshot()})
        assert text.count("# TYPE repro_c_total counter") == 1

    def test_name_sanitization_and_label_escaping(self):
        document = {"obs": {"enabled": True, "spans": {},
                            "counters": [{"name": "weird-name.x",
                                          "labels": {"path": 'a"b\\c'},
                                          "value": 1}],
                            "histograms": []}}
        text = prometheus_text(document)
        assert "repro_weird_name_x_total" in text
        assert r'path="a\"b\\c"' in text

    def test_cache_store_scheduler_sections(self):
        document = {
            "obs": {"enabled": False, "counters": [], "histograms": [], "spans": {}},
            "caches": {"distance_matrix": {"size": 1, "maxsize": 128, "hits": 5,
                                           "misses": 2, "evictions": 0}},
            "store": {"entries": 7, "payload_bytes": 123, "hits": 4, "misses": 1,
                      "library_versions": {"1.10.0": 7}},
            "scheduler": {"requests": 2, "cells": 8, "coalesced": 1,
                          "store_hits": 0, "executed": 7, "failed": 0,
                          "rejected": 0, "pending": 0, "inflight": 0,
                          "workers": 2, "queue_limit": 64, "accepting": True},
        }
        text = prometheus_text(document)
        assert 'repro_cache_hits_total{cache="distance_matrix"} 5' in text
        assert "repro_store_entries 7" in text
        assert 'repro_store_version_entries{library_version="1.10.0"} 7' in text
        assert "repro_service_requests_total 2" in text
        assert "repro_service_accepting 1" in text


class TestStatsDocument:
    def test_document_carries_obs_and_cache_sections(self):
        document = stats_document()
        assert set(document) == {"obs", "caches"}
        assert "distance_matrix" in document["caches"]
        assert cache_stats_view(document) is document["caches"]

    def test_store_view_matches_store_stats_exactly(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        document = stats_document(store=store)
        assert store_stats_view(document) == store.stats()

    def test_scheduler_view_matches_scheduler_stats_exactly(self):
        from repro.service import ServiceScheduler

        with ServiceScheduler(store=False, workers=1) as scheduler:
            document = stats_document(scheduler=scheduler)
            assert scheduler_stats_view(document) == scheduler.stats()

    def test_views_refuse_missing_sections(self):
        with pytest.raises(ValueError, match="no store section"):
            store_stats_view(stats_document())
        with pytest.raises(ValueError, match="no scheduler section"):
            scheduler_stats_view(stats_document())
