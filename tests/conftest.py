"""Shared fixtures: small deterministic scenarios and structures used across the suite."""

from __future__ import annotations

import math

import pytest

from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.graphs.hamiltonian import convex_hull_insertion_tour
from repro.graphs.tour import Tour
from repro.network.field import Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import Sink, Target
from repro.workloads.scenarios import figure1_scenario, grid_scenario, single_vip_scenario


@pytest.fixture(autouse=True)
def _isolated_result_store(monkeypatch):
    """Keep tests hermetic: no ambient result store leaks into (or out of) a test.

    A developer with ``REPRO_STORE_DIR`` exported (or a prior ``configure``
    call) would otherwise make every campaign in the suite resume from their
    personal store.  Tests that want a store use an explicit ``tmp_path``
    root or ``repro.store.configure``; monkeypatch restores these globals
    afterwards.
    """
    from repro.store import store as store_module

    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.setattr(store_module, "_CONFIGURED_ROOT", None)
    monkeypatch.setattr(store_module, "_ENABLED", True)


@pytest.fixture
def square_points() -> dict[str, Point]:
    """Four nodes on a unit-ish square plus labels, handy for tour tests."""
    return {
        "a": Point(0.0, 0.0),
        "b": Point(100.0, 0.0),
        "c": Point(100.0, 100.0),
        "d": Point(0.0, 100.0),
    }


@pytest.fixture
def square_tour(square_points) -> Tour:
    """The CCW square tour a -> b -> c -> d."""
    return Tour(["a", "b", "c", "d"], square_points)


@pytest.fixture
def ring_coordinates() -> dict[str, Point]:
    """Ten nodes (sink + g1..g9) evenly spaced on a circle of radius 200."""
    coords = {}
    names = ["sink"] + [f"g{i}" for i in range(1, 10)]
    for i, name in enumerate(names):
        angle = 2.0 * math.pi * i / len(names)
        coords[name] = Point(400.0 + 200.0 * math.cos(angle), 400.0 + 200.0 * math.sin(angle))
    return coords


@pytest.fixture
def ring_tour(ring_coordinates) -> Tour:
    return convex_hull_insertion_tour(ring_coordinates).rotated_to("sink")


@pytest.fixture
def simple_scenario() -> Scenario:
    """Tiny fully-deterministic scenario: 4 targets on a square, 2 mules at the sink."""
    params = SimulationParameters()
    targets = [
        Target("g1", Point(100.0, 100.0)),
        Target("g2", Point(700.0, 100.0)),
        Target("g3", Point(700.0, 700.0)),
        Target("g4", Point(100.0, 700.0)),
    ]
    sink = Sink("sink", Point(400.0, 50.0))
    mules = [
        DataMule("m1", sink.position, velocity=params.mule_velocity),
        DataMule("m2", sink.position, velocity=params.mule_velocity),
    ]
    return Scenario(targets=targets, sink=sink, mules=mules, field=Field(), params=params,
                    name="simple-square")


@pytest.fixture
def vip_scenario() -> Scenario:
    """Single-VIP scenario (g4 has weight 2) — matches the paper's worked example."""
    return single_vip_scenario(vip_weight=2, num_mules=2)


@pytest.fixture
def recharge_scenario() -> Scenario:
    """Grid scenario with batteries and a recharge station (for RW-TCTP tests)."""
    return grid_scenario(rows=3, cols=3, num_mules=2, battery=150_000.0,
                         with_recharge_station=True)


@pytest.fixture
def fig1_scenario() -> Scenario:
    return figure1_scenario(num_mules=4)


@pytest.fixture
def battery() -> Battery:
    return Battery(1000.0)
