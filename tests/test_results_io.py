"""Unit tests for repro.experiments.results_io (JSON round-trip, CSV export)."""

import json
import math

import pytest

from repro.experiments.results_io import export_grid_csv, grid_to_rows, load_result, save_result


class TestJsonRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        data = {"experiment": "fig7", "series": {"tctp": [1.0, 2.0]}}
        path = save_result(data, tmp_path / "fig7.json")
        loaded = load_result(path)
        assert loaded["experiment"] == "fig7"
        assert loaded["series"]["tctp"] == [1.0, 2.0]

    def test_tuple_keys_restored(self, tmp_path):
        data = {"grid": {"chb": {(10, 2): 5.0, (20, 4): 7.5}}}
        loaded = load_result(save_result(data, tmp_path / "grid.json"))
        assert loaded["grid"]["chb"][(10, 2)] == 5.0
        assert loaded["grid"]["chb"][(20, 4)] == 7.5

    def test_meta_block_added(self, tmp_path):
        loaded = load_result(save_result({"x": 1}, tmp_path / "x.json",
                                         extra_metadata={"note": "test"}))
        assert "library_version" in loaded["_meta"]
        assert loaded["_meta"]["note"] == "test"

    def test_file_is_valid_json(self, tmp_path):
        path = save_result({"x": [1, 2, 3]}, tmp_path / "v.json")
        json.loads(path.read_text())  # raises if invalid

    def test_parent_directories_created(self, tmp_path):
        path = save_result({"x": 1}, tmp_path / "deep" / "nested" / "r.json")
        assert path.exists()

    def test_experiment_result_round_trip(self, tmp_path):
        """A real (quick) Figure 8 run survives the round trip with its tuple-keyed grid."""
        from repro.experiments import ExperimentSettings
        from repro.experiments.fig8_sd import run_fig8

        data = run_fig8(ExperimentSettings.quick(replications=1, horizon=10_000.0,
                                                 num_targets=8, num_mules=2),
                        target_counts=(8,), mule_counts=(2,))
        loaded = load_result(save_result(data, tmp_path / "fig8.json"))
        assert loaded["grid"]["b-tctp"][(8, 2)] == pytest.approx(data["grid"]["b-tctp"][(8, 2)])


class TestGridExport:
    GRID = {"chb": {(10, 2): 1.0, (10, 4): 2.0}, "tctp": {(10, 2): 0.0, (10, 4): 0.0}}

    def test_grid_to_rows(self):
        headers, rows = grid_to_rows(self.GRID, key_names=("targets", "mules"))
        assert headers == ["targets", "mules", "chb", "tctp"]
        assert rows == [[10, 2, 1.0, 0.0], [10, 4, 2.0, 0.0]]

    def test_missing_cell_becomes_nan(self):
        grid = {"a": {(1,): 1.0}, "b": {(2,): 2.0}}
        _headers, rows = grid_to_rows(grid, key_names=("k",))
        flat = [c for row in rows for c in row]
        assert any(isinstance(v, float) and math.isnan(v) for v in flat)

    def test_empty_grid(self):
        headers, rows = grid_to_rows({}, key_names=("x",))
        assert headers == ["x"]
        assert rows == []

    def test_export_csv(self, tmp_path):
        path = export_grid_csv(self.GRID, tmp_path / "grid.csv", key_names=("targets", "mules"))
        text = path.read_text()
        lines = text.strip().splitlines()
        assert lines[0] == "targets,mules,chb,tctp"
        assert len(lines) == 3
