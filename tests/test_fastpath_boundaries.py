"""Fallback-boundary tests: every rejection path lands on a pinned answer.

For each remaining way a cell can decline the scalar fast path or the batched
tensor pass, these tests pin two things at once:

* the fallback actually fires (the rejection reason / batch ``None``), and
* the authoritative event-loop result matches a hand-computed expectation,

so a future widening of eligibility has a ground-truth answer to preserve,
not just "the two paths agree with each other".

The hand computations all use the 2 m/s line scenario: sink at the origin,
g1 at 100 m, g2 at 200 m, loop sink → g1 → g2 (a 400 m lap), data rate 1.0 —
g1 is visited at t = 50, g2 at t = 100, the sink flush lands at t = 200
(plus the visit the engine records at t = 0 for a mule standing on the sink).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.plan import LoopRoute, PatrolPlan, StochasticRoute
from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.datamodel import DataPacket
from repro.network.field import Field
from repro.network.mules import DataMule
from repro.network.scenario import Scenario, SimulationParameters
from repro.network.targets import RechargeStation, Sink, Target
from repro.runner.campaign import _json_sanitize, execute_run
from repro.runner.spec import RunSpec
from repro.scenarios import ScenarioSpec
from repro.sim import batchpath
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.fastpath import fast_path_eligible, fast_path_rejection

FAST = SimulationConfig(horizon=500.0, track_energy=False)
SLOW = dataclasses.replace(FAST, fast_path=False)


def line_scenario(*, battery=None, with_recharge=False, collection_time=0.0,
                  rates=(1.0, 1.0), velocities=(2.0,)):
    params = SimulationParameters(collection_time=collection_time)
    targets = [
        Target("g1", Point(100.0, 0.0), data_rate=rates[0]),
        Target("g2", Point(200.0, 0.0), data_rate=rates[1]),
    ]
    sink = Sink("sink", Point(0.0, 0.0))
    recharge = RechargeStation("recharge", Point(150.0, 0.0)) if with_recharge else None
    mules = [
        DataMule(f"m{i + 1}", sink.position, velocity=v,
                 battery=battery() if battery else None)
        for i, v in enumerate(velocities)
    ]
    return Scenario(targets=targets, sink=sink, mules=mules,
                    recharge_station=recharge, field=Field(), params=params,
                    name="line")


def loop_plan(scenario, *, loops=None):
    coords = scenario.patrol_points(
        include_recharge=scenario.recharge_station is not None
    )
    loops = loops or {m.id: ["sink", "g1", "g2"] for m in scenario.mules}
    return PatrolPlan(
        strategy="manual",
        routes={mid: LoopRoute(mid, loop, coords) for mid, loop in loops.items()},
    )


def run_both(scenario_factory, plan_factory, *, fast_cfg=FAST, slow_cfg=SLOW):
    results = []
    for cfg in (fast_cfg, slow_cfg):
        scenario = scenario_factory()
        results.append(PatrolSimulator(scenario, plan_factory(scenario), cfg).run())
    return results


def canonical(record: dict) -> str:
    return json.dumps(_json_sanitize(record), sort_keys=True)


class TestScalarRejections:
    """The three remaining scalar rejection reasons, each with ground truth."""

    def test_disabled_flag_rejects_and_event_loop_is_authoritative(self):
        scenario = line_scenario()
        sim = PatrolSimulator(scenario, loop_plan(scenario), SLOW)
        assert fast_path_rejection(sim) == "fast-path-disabled"
        result = sim.run()
        assert result.visit_times("g1") == pytest.approx([50.0, 250.0, 450.0])
        assert result.visit_times("g2") == pytest.approx([100.0, 300.0, 500.0])
        assert result.visit_times("sink") == pytest.approx([0.0, 200.0, 400.0])
        # Flushes at 200 (50 + 100) and 400 ((250-50) + (300-100)).
        assert result.total_delivered_data() == pytest.approx(550.0)
        assert result.traces["m1"].distance_travelled == pytest.approx(1000.0)

    def test_preloaded_buffer_rejects_and_preload_flushes_first(self):
        def build():
            scenario = line_scenario()
            scenario.mules[0].buffer.add(
                DataPacket(target_id="g9", generated_from=0.0, generated_to=1.0,
                           collected_at=1.0, size=7.0)
            )
            return scenario

        scenario = build()
        sim = PatrolSimulator(scenario, loop_plan(scenario), FAST)
        assert fast_path_rejection(sim) == "preloaded-buffer"
        result = PatrolSimulator(build(), loop_plan(build()), SLOW).run()
        # The preloaded 7.0 rides ahead of the lap's 150.0 in the first flush.
        assert result.total_delivered_data() == pytest.approx(557.0)
        assert result.deliveries[0].size == pytest.approx(7.0)

    def test_stochastic_route_rejects_and_single_candidate_halts(self):
        def plan(scenario):
            coords = scenario.patrol_points()
            return PatrolPlan(strategy="manual", routes={
                "m1": StochasticRoute("m1", ["g1"], coords, seed=3),
            })

        scenario = line_scenario()
        sim = PatrolSimulator(scenario, plan(scenario), FAST)
        assert fast_path_rejection(sim) == "route-class"
        result = sim.run()
        # One candidate repeats forever; the duplicate-skip rule halts the
        # mule after its single 100 m leg: one visit, nothing delivered.
        assert result.visit_times("g1") == pytest.approx([50.0])
        assert result.total_delivered_data() == 0
        assert result.traces["m1"].distance_travelled == pytest.approx(100.0)


class TestBatchFallbacks:
    """Cells the batch declines must land on the per-cell answer, not near it."""

    def _spec(self, *, strategy="b-tctp", sim=None, seed=1, **kwargs):
        sim_fields = {"horizon": 5_000.0, "track_energy": False}
        sim_fields.update(sim or {})
        return RunSpec(
            strategy=strategy,
            scenario=ScenarioSpec(
                "uniform",
                {"num_targets": 8, "num_mules": 2, **kwargs.pop("params", {})},
                seed=5,
            ),
            sim=SimulationConfig(**sim_fields),
            seed=seed,
            **kwargs,
        )

    def _assert_falls_back_but_agrees(self, spec):
        pre = batchpath.batch_execute_records([spec, spec])
        assert pre == [None, None]
        with batchpath.batchpath_disabled():
            per_cell = execute_run(spec)
        event = execute_run(dataclasses.replace(
            spec, sim=dataclasses.replace(spec.sim, fast_path=False)
        ))
        assert canonical(per_cell) == canonical(event)
        return per_cell

    def test_max_visits_cell_falls_back(self):
        spec = self._spec(sim={"max_visits": 10})
        self._assert_falls_back_but_agrees(spec)

    def test_max_visits_ground_truth_on_the_line(self):
        scenario = line_scenario()
        cfg = dataclasses.replace(SLOW, horizon=10_000.0, max_visits=4)
        result = PatrolSimulator(scenario, loop_plan(scenario), cfg).run()
        # Recorded visits sink@0 (standing start), g1@50, g2@100, sink@200,
        # then the cap trips; the flush at the fourth visit still lands.
        assert [v.time for v in result.visits] == pytest.approx(
            [0.0, 50.0, 100.0, 200.0]
        )
        assert result.total_delivered_data() == pytest.approx(150.0)

    def test_tracked_battery_cell_falls_back(self):
        spec = self._spec(
            sim={"track_energy": True},
            params={"mule_battery": 500_000.0, "with_recharge_station": True},
        )
        self._assert_falls_back_but_agrees(spec)

    def test_custom_metrics_cell_falls_back(self):
        spec = self._spec(metrics=["path_length"])
        record = self._assert_falls_back_but_agrees(spec)
        assert "path_length" in record

    def test_batch_path_flag_opts_out_per_spec(self):
        spec = self._spec(sim={"batch_path": False})
        pre = batchpath.batch_execute_records([spec, spec])
        assert pre == [None, None]
        # The scalar fast path stays on: the flag only skips the batch layer.
        scenario_sim = self._spec()
        assert scenario_sim.sim.fast_path

    def test_material_ties_fall_back(self):
        # chb staggers several mules around one tour; on this layout two
        # mules collect at the same target at the same instant, which is
        # heap-order dependent — the batch must hand the cell back.
        spec = RunSpec(
            strategy="chb",
            scenario=ScenarioSpec("uniform", {"num_targets": 12, "num_mules": 3},
                                  seed=42),
            sim=SimulationConfig(horizon=15_000.0, track_energy=False),
            seed=1,
        )
        pre = batchpath.batch_execute_records([spec, spec])
        assert pre == [None, None]
        with batchpath.batchpath_disabled():
            per_cell = execute_run(spec)
        event = execute_run(dataclasses.replace(
            spec, sim=dataclasses.replace(spec.sim, fast_path=False)
        ))
        assert canonical(per_cell) == canonical(event)

    def test_single_spec_batches_are_skipped(self):
        spec = self._spec()
        assert batchpath.batch_execute_records([spec]) == [None]

    def test_process_switch_disables_batching(self):
        spec = self._spec()
        with batchpath.batchpath_disabled():
            assert batchpath.batch_execute_records([spec, spec]) == [None, None]
        assert batchpath.batchpath_enabled()


class TestPerEntityConfigAudit:
    """Eligibility must consider *every* mule and target, not just the first.

    Regression guards for the per-entity audit: heterogeneous velocities,
    heterogeneous data rates and partially drained batteries all stay
    byte-identical between the fast paths and the event loop.
    """

    def test_heterogeneous_velocities(self):
        def build():
            return line_scenario(velocities=(2.0, 4.0))

        def plan(scenario):
            return loop_plan(scenario, loops={
                "m1": ["sink", "g1", "g2"],
                "m2": ["sink", "g2", "g1"],
            })

        sim = PatrolSimulator(build(), plan(build()), FAST)
        assert fast_path_eligible(sim)
        fast, slow = run_both(build, plan)
        assert fast == slow
        # m2 runs the reversed lap at 4 m/s: g2 (200 m) at t = 50
        # (after its standing-start sink visit at t = 0).
        m2_visits = [v.time for v in fast.visits if v.mule_id == "m2"]
        assert m2_visits[:2] == pytest.approx([0.0, 50.0])

    def test_heterogeneous_data_rates(self):
        def build():
            return line_scenario(rates=(0.5, 2.0))

        fast, slow = run_both(build, loop_plan)
        assert fast == slow
        # First flush at t = 200: 50 s * 0.5 + 100 s * 2.0.
        first_flush = [d for d in fast.deliveries if d.delivered_at == 200.0]
        assert sum(d.size for d in first_flush) == pytest.approx(225.0)

    def test_partially_drained_battery_untracked(self):
        def build():
            return line_scenario(
                battery=lambda: Battery(100_000.0, remaining=40_000.0),
                with_recharge=True,
            )

        fast, slow = run_both(build, loop_plan)
        assert fast == slow

    def test_partially_drained_battery_tracked(self):
        cfg_fast = dataclasses.replace(FAST, track_energy=True)
        cfg_slow = dataclasses.replace(SLOW, track_energy=True)

        def build():
            return line_scenario(
                battery=lambda: Battery(100_000.0, remaining=40_000.0),
                with_recharge=True,
            )

        fast, slow = run_both(build, loop_plan, fast_cfg=cfg_fast,
                              slow_cfg=cfg_slow)
        assert fast == slow

    def test_batch_respects_per_mule_batteries(self):
        """Any mule with a battery under track_energy sends the cell back."""
        spec = RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec(
                "uniform",
                {"num_targets": 8, "num_mules": 3, "mule_battery": 400_000.0,
                 "with_recharge_station": True},
                seed=5,
            ),
            sim=SimulationConfig(horizon=5_000.0, track_energy=True),
            seed=1,
        )
        assert batchpath.batch_execute_records([spec, spec]) == [None, None]
