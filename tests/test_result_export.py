"""CampaignResult export round-trips: CSV/JSON on disk equals the in-memory
records, writes are atomic, and ``_json_sanitize`` flattens numpy values."""

from __future__ import annotations

import csv
import json
import threading

import numpy as np
import pytest

from repro.runner import Campaign, CampaignSpec, CampaignResult, RunSpec
from repro.runner.campaign import _json_sanitize
from repro.scenarios import ScenarioSpec
from repro.sim.engine import SimulationConfig
from repro.store.io import atomic_write_text


@pytest.fixture(scope="module")
def campaign_result() -> CampaignResult:
    spec = CampaignSpec(
        base=RunSpec(
            strategy="b-tctp",
            scenario=ScenarioSpec("uniform", {"num_targets": 6, "num_mules": 2}),
            sim=SimulationConfig(horizon=4000.0, track_energy=False),
            seed=1,
        ),
        grid={"strategy": ["chb", "b-tctp"]},
        replications=2,
    )
    return Campaign(spec).run()


class TestJsonRoundTrip:
    def test_saved_json_equals_in_memory_records(self, campaign_result, tmp_path):
        path = campaign_result.save_json(tmp_path / "records.json")
        payload = json.loads(path.read_text())
        assert payload["records"] == campaign_result.records
        assert payload["spec"] == campaign_result.spec.to_dict()
        assert payload["_meta"]["library_version"]

    def test_nan_metrics_become_null_not_token(self, tmp_path):
        result = CampaignResult(records=[{"vip_sd": float("nan"), "x": 1}])
        path = result.save_json(tmp_path / "r.json")
        text = path.read_text()
        assert "NaN" not in text
        assert json.loads(text)["records"] == [{"vip_sd": None, "x": 1}]

    def test_save_json_is_atomic(self, campaign_result, tmp_path):
        target = tmp_path / "records.json"
        target.write_text("previous artifact")
        campaign_result.save_json(target)
        assert json.loads(target.read_text())["records"] == campaign_result.records
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_leaves_previous_artifact(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("previous artifact")

        with pytest.raises(TypeError):
            # atomic_write_text only publishes after a complete write; force a
            # failure inside the write itself.
            atomic_write_text(target, object())  # type: ignore[arg-type]
        assert target.read_text() == "previous artifact"
        assert list(tmp_path.glob("*.tmp")) == []


class TestCsvRoundTrip:
    def test_saved_csv_matches_scalar_columns(self, campaign_result, tmp_path):
        path = campaign_result.save_csv(tmp_path / "records.csv")
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        headers, expected_rows = campaign_result.to_rows(scalar_only=True)
        assert rows[0] == headers
        assert len(rows) == 1 + len(expected_rows)
        for read_row, expected in zip(rows[1:], expected_rows):
            for read_cell, cell in zip(read_row, expected):
                if isinstance(cell, float):
                    assert float(read_cell) == pytest.approx(cell, abs=1e-6)
                else:
                    assert read_cell == str(cell)

    def test_csv_written_with_unix_newlines_verbatim(self, campaign_result, tmp_path):
        path = campaign_result.save_csv(tmp_path / "records.csv")
        raw = path.read_bytes()
        assert b"\r" not in raw          # newline="" wrote to_csv's \n verbatim
        assert raw.endswith(b"\n")

    def test_save_csv_is_atomic(self, campaign_result, tmp_path):
        target = tmp_path / "records.csv"
        target.write_text("stale")
        campaign_result.save_csv(target)
        assert target.read_text().startswith("strategy,")
        assert list(tmp_path.glob("*.tmp")) == []


class TestJsonSanitize:
    def test_nested_numpy_scalars_unwrap(self):
        record = {"a": np.int64(3), "b": [np.float64(1.5), {"c": np.bool_(True)}]}
        out = _json_sanitize(record)
        assert out == {"a": 3, "b": [1.5, {"c": True}]}
        assert type(out["a"]) is int and type(out["b"][0]) is float
        json.dumps(out, allow_nan=False)  # strict-JSON safe

    def test_numpy_arrays_become_nested_lists(self):
        record = {"grid": np.arange(4.0).reshape(2, 2), "ints": np.array([1, 2])}
        out = _json_sanitize(record)
        assert out == {"grid": [[0.0, 1.0], [2.0, 3.0]], "ints": [1, 2]}
        json.dumps(out, allow_nan=False)

    def test_numpy_nan_and_inf_become_null(self):
        record = {"nan": np.float64("nan"), "inf": np.float64("inf"),
                  "arr": np.array([1.0, float("nan")])}
        out = _json_sanitize(record)
        assert out == {"nan": None, "inf": None, "arr": [1.0, None]}

    def test_tuples_become_lists(self):
        assert _json_sanitize({"pos": (1, 2)}) == {"pos": [1, 2]}

    def test_save_json_with_numpy_metric_values(self, tmp_path):
        result = CampaignResult(records=[{"counts": np.array([3, 4]), "m": np.int32(7)}])
        path = result.save_json(tmp_path / "np.json")
        assert json.loads(path.read_text())["records"] == [{"counts": [3, 4], "m": 7}]


class TestAtomicWriteText:
    def test_creates_parents_and_returns_path(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "nested" / "f.txt", "hello")
        assert path.read_text() == "hello"

    def test_concurrent_writers_leave_a_complete_file(self, tmp_path):
        target = tmp_path / "contended.txt"
        payloads = [f"payload-{i}\n" * 200 for i in range(8)]

        def write(text):
            atomic_write_text(target, text)

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.read_text() in payloads   # one complete payload, never a mix
        assert list(tmp_path.glob("*.tmp")) == []
