"""Unit tests for repro.sim.recorder (result records and accessors)."""

import pytest

from repro.sim.recorder import DeliveryRecord, MuleTrace, SimulationResult, VisitRecord


def _result_with_visits():
    r = SimulationResult(strategy="test", horizon=1000.0)
    r.visits.extend(
        [
            VisitRecord(10.0, "g1", "m1"),
            VisitRecord(30.0, "g2", "m1"),
            VisitRecord(20.0, "g1", "m2"),
            VisitRecord(40.0, "recharge", "m1", is_target=False),
        ]
    )
    r.traces["m1"] = MuleTrace("m1", distance_travelled=100.0, energy_consumed=50.0)
    r.traces["m2"] = MuleTrace("m2", distance_travelled=200.0, energy_consumed=75.0,
                               death_time=500.0)
    r.deliveries.append(DeliveryRecord(100.0, "m1", "g1", 0.0, 50.0, 50.0, 50.0))
    return r


class TestVisitAccessors:
    def test_target_visits_sorted_and_filtered(self):
        r = _result_with_visits()
        visits = r.target_visits()
        assert [v.time for v in visits] == [10.0, 20.0, 30.0]
        assert all(v.is_target for v in visits)

    def test_target_visits_single_target(self):
        r = _result_with_visits()
        assert [v.time for v in r.target_visits("g1")] == [10.0, 20.0]

    def test_visit_times(self):
        assert _result_with_visits().visit_times("g1") == [10.0, 20.0]

    def test_visited_targets(self):
        assert _result_with_visits().visited_targets() == ["g1", "g2"]

    def test_visit_count(self):
        r = _result_with_visits()
        assert r.visit_count("g1") == 2
        assert r.visit_count("g9") == 0


class TestAggregates:
    def test_totals(self):
        r = _result_with_visits()
        assert r.total_distance() == pytest.approx(300.0)
        assert r.total_energy() == pytest.approx(125.0)
        assert r.total_delivered_data() == pytest.approx(50.0)

    def test_surviving_and_dead(self):
        r = _result_with_visits()
        assert r.surviving_mules() == ["m1"]
        assert r.dead_mules() == ["m2"]

    def test_summary_keys(self):
        summary = _result_with_visits().summary()
        assert summary["strategy"] == "test"
        assert summary["num_visits"] == 3
        assert summary["dead_mules"] == ["m2"]


class TestDeliveryRecord:
    def test_latency_uses_generation_midpoint(self):
        d = DeliveryRecord(delivered_at=200.0, mule_id="m1", target_id="g1",
                           generated_from=0.0, generated_to=100.0, collected_at=100.0, size=1.0)
        assert d.latency == pytest.approx(150.0)


class TestMuleTrace:
    def test_alive_flag(self):
        assert MuleTrace("m1").alive
        assert not MuleTrace("m1", death_time=5.0).alive
