"""Differential tests for the vectorized planning kernels (repro.planning.kernels).

Every kernel must be **byte-identical** to the scalar loop it replaces:

* kernel-level — the vectorized cheapest-insertion / nearest-neighbour /
  2-opt / Or-opt orders match the scalar tours node for node over seeded
  random instances (including tie-heavy lattices and duplicate points);
* plan-level — ``serialize_plan`` of every golden strategy call and of
  seeded random planning specs is byte-equal with the switch on and off;
* record-level — full :func:`~repro.runner.campaign.execute_run` records are
  byte-equal with the switch on and off.

The tour cache is cleared between dispatch legs: the hamiltonian memo is
keyed by content only (the switch is byte-invisible by contract), so a warm
cache would serve the first leg's tour to the second and make the comparison
vacuous.

Seed and case count are fixed for CI but overridable::

    REPRO_PLANNING_FUZZ_SEED=123 REPRO_PLANNING_FUZZ_CASES=80 \
        pytest tests/test_planning_kernels.py
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from plan_golden import golden_scenarios, golden_strategy_calls, serialize_plan
from repro.baselines.base import get_strategy, strategy_params
from repro.geometry.cache import caching_disabled, clear_caches
from repro.geometry.point import Point, distance_matrix
from repro.graphs.hamiltonian import (
    convex_hull_insertion_tour,
    nearest_neighbor_tour,
)
from repro.graphs.improve import or_opt, two_opt
from repro.planning import kernels
from repro.runner.campaign import _json_sanitize, execute_run
from repro.runner.spec import RunSpec
from repro.scenarios import ScenarioSpec
from repro.sim.engine import SimulationConfig

FUZZ_SEED = int(os.environ.get("REPRO_PLANNING_FUZZ_SEED", "20260808"))
FUZZ_CASES = int(os.environ.get("REPRO_PLANNING_FUZZ_CASES", "40"))


def _random_coords(rng, n, *, lattice=False):
    pts = rng.uniform(0, 1000, (n, 2))
    if lattice:  # snap to a coarse grid so exact distance ties are common
        pts = np.round(pts / 125) * 125
    return {f"t{i}": Point(float(x), float(y)) for i, (x, y) in enumerate(pts)}


def _both_ways(build, coords):
    """(scalar, vector) tours for one builder, caches cold on both legs."""
    clear_caches()
    with caching_disabled():
        with kernels.vector_disabled():
            scalar = build(coords)
        vector = build(coords)
    return scalar, vector


class TestSwitch:
    def test_enabled_by_default(self):
        assert kernels.vector_enabled()

    def test_configure_round_trip(self):
        kernels.configure(enabled=False)
        try:
            assert not kernels.vector_enabled()
        finally:
            kernels.configure(enabled=True)
        assert kernels.vector_enabled()

    def test_vector_disabled_scopes_and_restores(self):
        assert kernels.vector_enabled()
        with kernels.vector_disabled():
            assert not kernels.vector_enabled()
            with kernels.vector_disabled():
                assert not kernels.vector_enabled()
            assert not kernels.vector_enabled()
        assert kernels.vector_enabled()

    def test_package_reexports(self):
        from repro import planning

        assert planning.vector_enabled is kernels.vector_enabled
        assert planning.vector_disabled is kernels.vector_disabled


class TestChainArgmin:
    @staticmethod
    def _scalar_chain(costs, eps):
        best = None
        best_index = None
        for index, cost in enumerate(costs):
            if best is None or cost < best - eps:
                best, best_index = cost, index
        return best_index

    def test_matches_scalar_chain_on_adversarial_sequences(self):
        rng = np.random.default_rng(FUZZ_SEED)
        eps = 1e-12
        for _ in range(200):
            base = rng.uniform(-10, 10, int(rng.integers(1, 60)))
            # inject near-ties straddling the epsilon window
            if base.size > 3:
                base[2] = base[1] - eps / 2        # within eps: must NOT win
                base[3] = base[1] - eps * 2        # beyond eps: must win
            assert kernels.chain_argmin(base, eps) == self._scalar_chain(base, eps)

    def test_descending_sequence_takes_last(self):
        costs = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        assert kernels.chain_argmin(costs, 1e-12) == 4

    def test_tie_within_eps_keeps_first(self):
        costs = np.array([1.0, 1.0 - 5e-13, 2.0])
        assert kernels.chain_argmin(costs, 1e-12) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kernels.chain_argmin(np.empty(0), 1e-12)


class TestOrderLength:
    def test_matches_tour_edge_sum(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, (7, 2))
        dmat = distance_matrix(pts)
        order = [3, 1, 4, 0, 6, 2, 5]
        expected = sum(dmat[a, b] for a, b in zip(order, order[1:] + order[:1]))
        assert kernels.order_length(order, dmat) == pytest.approx(expected)


class TestKernelTourIdentity:
    def test_hull_insertion_identical(self):
        rng = np.random.default_rng(FUZZ_SEED + 1)
        for trial in range(25):
            coords = _random_coords(rng, int(rng.integers(4, 45)), lattice=trial % 4 == 0)
            scalar, vector = _both_ways(convex_hull_insertion_tour, coords)
            assert list(vector.order) == list(scalar.order)

    def test_nearest_neighbor_identical(self):
        rng = np.random.default_rng(FUZZ_SEED + 2)
        for trial in range(25):
            coords = _random_coords(rng, int(rng.integers(2, 45)), lattice=trial % 3 == 0)
            scalar, vector = _both_ways(nearest_neighbor_tour, coords)
            assert list(vector.order) == list(scalar.order)

    def test_nearest_neighbor_lattice_tie_break(self):
        # four candidates exactly equidistant from the start: the scalar loop
        # breaks the tie on str(id); the kernel must pick the same node
        coords = {
            "center": Point(0, 0),
            "n": Point(0, 10), "s": Point(0, -10), "e": Point(10, 0), "w": Point(-10, 0),
        }
        scalar, vector = _both_ways(
            lambda c: nearest_neighbor_tour(c, start="center"), coords
        )
        assert list(vector.order) == list(scalar.order)

    def test_duplicate_points_identical(self):
        coords = {
            "a": Point(0, 0), "b": Point(100, 0), "c": Point(100, 100),
            "d": Point(0, 100), "dup1": Point(50, 50), "dup2": Point(50, 50),
        }
        for build in (convex_hull_insertion_tour, nearest_neighbor_tour):
            scalar, vector = _both_ways(build, coords)
            assert list(vector.order) == list(scalar.order)

    def test_two_opt_identical(self):
        rng = np.random.default_rng(FUZZ_SEED + 3)
        for trial in range(25):
            coords = _random_coords(rng, int(rng.integers(4, 45)), lattice=trial % 4 == 0)
            scalar, vector = _both_ways(
                lambda c: two_opt(convex_hull_insertion_tour(c)), coords
            )
            assert list(vector.order) == list(scalar.order)

    def test_or_opt_identical(self):
        rng = np.random.default_rng(FUZZ_SEED + 4)
        for trial in range(25):
            coords = _random_coords(rng, int(rng.integers(5, 45)), lattice=trial % 4 == 0)
            scalar, vector = _both_ways(
                lambda c: or_opt(convex_hull_insertion_tour(c)), coords
            )
            assert list(vector.order) == list(scalar.order)

    def test_improvement_passes_never_lengthen(self):
        rng = np.random.default_rng(FUZZ_SEED + 5)
        for _ in range(8):
            coords = _random_coords(rng, int(rng.integers(6, 30)))
            clear_caches()
            with caching_disabled():
                tour = convex_hull_insertion_tour(coords)
                assert two_opt(tour).length() <= tour.length() + 1e-9
                assert or_opt(tour).length() <= tour.length() + 1e-9


class TestGoldenPlansUnderVectorDispatch:
    """The PR 4 golden strategy calls plan byte-identically with kernels on."""

    def test_golden_calls_identical_across_dispatch(self):
        scenarios = golden_scenarios()
        for key, strategy, kwargs in golden_strategy_calls():
            clear_caches()
            with kernels.vector_disabled():
                scalar = serialize_plan(
                    get_strategy(strategy, **kwargs).plan(scenarios[key].fresh_copy())
                )
            clear_caches()
            vector = serialize_plan(
                get_strategy(strategy, **kwargs).plan(scenarios[key].fresh_copy())
            )
            assert json.dumps(vector, sort_keys=True) == json.dumps(scalar, sort_keys=True), (
                f"plan diverged under vector dispatch: {key} / {strategy} / {kwargs}"
            )


FAMILIES = ["uniform", "grid-jitter", "clustered", "ring"]
STRATEGIES = [
    "b-tctp", "w-tctp", "chb", "sweep", "random",
    "b-tctp-cw", "sw-tctp", "cb-tctp", "staggered-chb",
]


def draw_case(rng: np.random.Generator) -> dict:
    return {
        "family": FAMILIES[int(rng.integers(len(FAMILIES)))],
        "strategy": STRATEGIES[int(rng.integers(len(STRATEGIES)))],
        "num_targets": int(rng.integers(4, 35)),
        "num_mules": int(rng.integers(1, 5)),
        "num_vips": int(rng.integers(0, 3)),
        "scenario_seed": int(rng.integers(1_000)),
        "seed": int(rng.integers(1_000_000)),
        "improve": bool(rng.integers(2)),
        "tsp_method": ["hull-insertion", "nearest-neighbor"][int(rng.integers(2))],
    }


def case_spec(case: dict) -> RunSpec:
    declared = strategy_params(case["strategy"])
    params = {}
    if "tsp_method" in declared:
        params["tsp_method"] = case["tsp_method"]
    if "improve_tour" in declared:
        params["improve_tour"] = case["improve"]
    return RunSpec(
        strategy=case["strategy"],
        scenario=ScenarioSpec(
            case["family"],
            {
                "num_targets": case["num_targets"],
                "num_mules": case["num_mules"],
                "num_vips": case["num_vips"],
            },
            seed=case["scenario_seed"],
        ),
        params=params,
        sim=SimulationConfig(horizon=2_500.0),
        seed=case["seed"],
    )


class TestFuzzedSpecsUnderVectorDispatch:
    def test_plans_and_records_identical_on_random_specs(self):
        rng = np.random.default_rng(FUZZ_SEED)
        for index in range(FUZZ_CASES):
            case = draw_case(rng)
            spec = case_spec(case)
            scenario_spec = spec.scenario

            plan_params = dict(spec.params)
            if "seed" in strategy_params(spec.strategy):
                plan_params.setdefault("seed", spec.seed)

            clear_caches()
            with kernels.vector_disabled():
                scalar_plan = serialize_plan(
                    get_strategy(spec.strategy, **plan_params).plan(
                        scenario_spec.build(spec.seed)
                    )
                )
                scalar_record = json.dumps(
                    _json_sanitize(execute_run(spec)), sort_keys=True
                )
            clear_caches()
            vector_plan = serialize_plan(
                get_strategy(spec.strategy, **plan_params).plan(
                    scenario_spec.build(spec.seed)
                )
            )
            vector_record = json.dumps(
                _json_sanitize(execute_run(spec)), sort_keys=True
            )

            assert json.dumps(vector_plan, sort_keys=True) == json.dumps(
                scalar_plan, sort_keys=True
            ), f"case {index} (seed {FUZZ_SEED}) plan diverged: {json.dumps(case)}"
            assert vector_record == scalar_record, (
                f"case {index} (seed {FUZZ_SEED}) record diverged: {json.dumps(case)}"
            )

    def test_generator_is_deterministic(self):
        a = [draw_case(np.random.default_rng(5)) for _ in range(4)]
        b = [draw_case(np.random.default_rng(5)) for _ in range(4)]
        assert a == b
