"""PR-4 byte-identity: composed pipelines reproduce the fused planners exactly.

The golden files under ``tests/golden/`` were captured by running the
*pre-refactor* fused planners (the seed of PR 4):

* ``pr4_plans.json`` — 24 serialized :class:`PatrolPlan`\\ s covering every
  legacy strategy (all six, with their parameter variants) on three fixture
  scenarios;
* ``pr4_experiments.json`` — the full output of all eight figure/ablation
  experiments under ``ExperimentSettings.quick()``.

These tests re-run the same inputs through the composed stage pipeline and
require exact equality — floats compared through ``repr`` (plans) and JSON
round-trips (experiments), i.e. bit-for-bit.
"""

import contextlib
import io
import json
from pathlib import Path

import pytest

from plan_golden import golden_scenarios, golden_strategy_calls, serialize_plan
from repro.baselines.base import get_strategy

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def scenarios():
    return golden_scenarios()


def _golden_plans():
    return json.loads((GOLDEN_DIR / "pr4_plans.json").read_text())


def _plan_case_id(index):
    scenario_key, strategy, _kwargs = golden_strategy_calls()[index]
    return f"{strategy}-{scenario_key}-{index}"


class TestGoldenPlans:
    def test_golden_covers_declared_calls(self):
        golden = _golden_plans()
        declared = [(key, strategy, kwargs) for key, strategy, kwargs in golden_strategy_calls()]
        captured = [(e["scenario"], e["strategy"], e["kwargs"]) for e in _golden_plans()]
        assert len(golden) == len(declared)
        assert captured == declared

    def test_all_legacy_strategies_covered(self):
        strategies = {e["strategy"] for e in _golden_plans()}
        assert strategies == {"random", "sweep", "chb", "b-tctp", "w-tctp", "rw-tctp"}

    @pytest.mark.parametrize("index", range(len(golden_strategy_calls())),
                             ids=_plan_case_id)
    def test_plan_byte_identical(self, scenarios, index):
        entry = _golden_plans()[index]
        scenario = scenarios[entry["scenario"]].fresh_copy()
        plan = get_strategy(entry["strategy"], **entry["kwargs"]).plan(scenario)
        assert serialize_plan(plan) == entry["plan"]


class TestGoldenExperiments:
    """All eight figure/ablation experiments, byte-identical to the seed."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((GOLDEN_DIR / "pr4_experiments.json").read_text())

    @pytest.mark.parametrize("name", [
        "fig7", "fig8", "fig9", "fig10",
        "energy", "ablation-init", "ablation-tsp", "ablation-mules",
    ])
    def test_experiment_records_identical(self, golden, name):
        from repro.cli import _jsonable
        from repro.experiments import (
            ablation_init, ablation_mules, ablation_tsp, ext_energy,
            fig10_policy_sd, fig7_dcdt, fig8_sd, fig9_policy_dcdt,
        )
        from repro.experiments.common import ExperimentSettings

        mains = {
            "fig7": fig7_dcdt.main, "fig8": fig8_sd.main,
            "fig9": fig9_policy_dcdt.main, "fig10": fig10_policy_sd.main,
            "energy": ext_energy.main, "ablation-init": ablation_init.main,
            "ablation-tsp": ablation_tsp.main, "ablation-mules": ablation_mules.main,
        }
        with contextlib.redirect_stdout(io.StringIO()):
            data = mains[name](ExperimentSettings.quick())
        got = json.loads(json.dumps(_jsonable(data), default=float))
        assert got == golden[name], f"{name} records drifted from the pre-refactor seed"
