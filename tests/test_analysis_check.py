"""Tests for the self-checking analysis layer (``repro-patrol check``).

Every rule id in the catalog is exercised with a seeded violation: the
determinism rules fire on the committed fixture files under
``tests/fixtures/analysis/``, the registry / fingerprint / schema rules fire
on synthetic inputs injected through the checkers' override parameters
(registering a bad entry for real would pollute the live registries, which
have no unregister).  The end-to-end tests assert the acceptance criteria:
``repro-patrol check --strict`` exits 0 on the repo itself, nonzero on a
fixture, and the fingerprint-coverage rule fails the build when a spec
dataclass grows a field with no hashing decision.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis.check import CheckReport, render_json, render_text, run_check
from repro.analysis.determinism import DEFAULT_SCOPE, check_determinism, scope_files
from repro.analysis.findings import (
    Finding,
    load_baseline,
    split_suppressed,
    suppressed_rules_by_line,
    write_baseline,
)
from repro.analysis.fingerprint_coverage import (
    check_fingerprint_coverage,
    default_spec_classes,
)
from repro.analysis.registry_contract import (
    check_registries,
    documented_params,
    factory_location,
)
from repro.analysis.rules import ANALYZERS, RULE_IDS, RULES, rules_for_analyzer
from repro.analysis.schema_drift import (
    check_schema_drift,
    current_schemas,
    load_golden,
    spec_schema,
    write_golden,
)
from repro.baselines.base import StrategyInfo
from repro.runner.spec import RunSpec
from repro.scenarios.registry import ScenarioInfo, ScenarioParam
from repro.sim.engine import SimulationConfig

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


# --------------------------------------------------------------------------- #
# rule catalog
# --------------------------------------------------------------------------- #

class TestRuleCatalog:
    def test_ids_unique_and_well_formed(self):
        assert len(RULE_IDS) == len(RULES)
        for rule in RULES:
            assert rule.id == rule.id.lower()
            assert " " not in rule.id
            assert rule.analyzer in ANALYZERS
            assert rule.summary

    def test_every_analyzer_owns_rules(self):
        for analyzer in ANALYZERS:
            assert rules_for_analyzer(analyzer), analyzer

    def test_analyzer_partition_covers_catalog(self):
        by_analyzer = [r.id for a in ANALYZERS for r in rules_for_analyzer(a)]
        assert sorted(by_analyzer) == sorted(RULE_IDS)


# --------------------------------------------------------------------------- #
# determinism lint (fixture files, one per rule id)
# --------------------------------------------------------------------------- #

DET_FIXTURES = {
    "det-unseeded-random": "det_unseeded_random.py",
    "det-global-np-random": "det_global_np_random.py",
    "det-wall-clock": "det_wall_clock.py",
    "det-set-iteration": "det_set_iteration.py",
    "det-env-branch": "det_env_branch.py",
}


class TestDeterminismLint:
    @pytest.mark.parametrize("rule_id,filename", sorted(DET_FIXTURES.items()))
    def test_fixture_fires_exactly_its_rule(self, rule_id, filename):
        findings, sources = check_determinism([FIXTURES / filename])
        assert len(sources) == 1
        fired = {f.rule for f in findings}
        assert fired == {rule_id}
        assert len(findings) >= 2  # each fixture seeds at least two violations
        for finding in findings:
            assert finding.line > 0
            assert finding.path.endswith(filename)

    def test_seeded_idioms_not_flagged(self):
        # The fixtures also contain the *allowed* counterparts
        # (random.Random(seed), np.random.default_rng(seed), sorted(set(...)))
        # in dedicated functions; no finding may anchor inside them.
        findings, sources = check_determinism(
            [FIXTURES / "det_unseeded_random.py", FIXTURES / "det_global_np_random.py"]
        )
        for path, source in sources.items():
            allowed_lines = {
                lineno
                for lineno, line in enumerate(source.splitlines(), start=1)
                if "allowed" in line
            }
            for finding in findings:
                if finding.path == path:
                    assert finding.line not in allowed_lines, finding.format()

    def test_suppressed_fixture_is_clean_via_run_check(self):
        report = run_check(paths=[FIXTURES / "det_suppressed.py"])
        assert report.findings == []
        assert report.suppressed == 3
        assert report.ok

    def test_directory_path_recurses(self):
        findings, sources = check_determinism([FIXTURES])
        assert len(sources) == len(list(FIXTURES.glob("*.py")))
        assert {f.rule for f in findings} == set(DET_FIXTURES)

    def test_unparsable_file_raises(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        with pytest.raises(ValueError, match="cannot lint"):
            check_determinism([bad])

    def test_default_scope_covers_registered_code(self):
        files = scope_files()
        covered = {f.as_posix() for f in files}
        for package in DEFAULT_SCOPE:
            assert any(f"/repro/{package}/" in path or f"/repro/{package}.py" in path
                       for path in covered), package


# --------------------------------------------------------------------------- #
# registry contract (synthetic registry tables)
# --------------------------------------------------------------------------- #

def _drifted_factory(alpha=1.0, gamma=2):
    return (alpha, gamma)


def _kwargs_factory(**kwargs):
    return kwargs


def _documented_factory(alpha=1.0):
    """Factory whose docstring drifted from its declaration.

    Parameters
    ----------
    alpha : float
        Declared and documented.
    beta : float
        Documented but never declared.
    """
    return alpha


def _scenario_factory(weights=None):
    return weights


def _strategy(factory, params, *, strict=True, description="synthetic"):
    return StrategyInfo(name="synthetic", factory=factory,
                        params=frozenset(params), strict=strict,
                        description=description)


class TestRegistryContract:
    def test_live_registries_are_clean(self):
        assert check_registries() == []

    def test_signature_drift(self):
        findings = check_registries(
            strategies={"drifty": _strategy(_drifted_factory, {"alpha", "beta"})},
            scenarios={}, stages={},
        )
        assert {f.rule for f in findings} == {"registry-signature-drift"}
        message = findings[0].message
        assert "beta" in message and "gamma" in message

    def test_undeclared_kwargs_and_missing_description(self):
        findings = check_registries(
            strategies={"loose": _strategy(_kwargs_factory, (), strict=False,
                                           description="")},
            scenarios={}, stages={},
        )
        fired = {f.rule for f in findings}
        assert fired == {"registry-undeclared-kwargs", "registry-missing-description"}

    def test_alias_shadow(self):
        strategies = {
            "grid-jitter": _strategy(_drifted_factory, {"alpha", "gamma"}),
            "grid_jitter": _strategy(_kwargs_factory, {"alpha", "gamma"}),
        }
        findings = check_registries(
            strategies=strategies,
            strategy_aliases={name: name for name in strategies},
            scenarios={}, stages={},
        )
        assert "registry-alias-shadow" in {f.rule for f in findings}

    def test_docstring_drift(self):
        findings = check_registries(
            strategies={"documented": _strategy(_documented_factory, {"alpha"})},
            scenarios={}, stages={},
        )
        assert {f.rule for f in findings} == {"registry-docstring-drift"}
        assert "beta" in findings[0].message

    def test_mutable_default_on_scenario(self):
        info = ScenarioInfo(
            name="weighted", factory=_scenario_factory,
            params={"weights": ScenarioParam("weights", default=[])},
            description="synthetic",
        )
        findings = check_registries(strategies={}, scenarios={"weighted": info},
                                    stages={})
        assert {f.rule for f in findings} == {"registry-mutable-default"}

    def test_param_ambiguity_with_sim_fields(self):
        sim_field = sorted(f.name for f in dataclasses.fields(SimulationConfig))[0]

        def _factory(**kwargs):
            return kwargs

        findings = check_registries(
            strategies={"clash": StrategyInfo(name="clash", factory=_factory,
                                              params=frozenset({sim_field}),
                                              strict=True,
                                              description="synthetic")},
            scenarios={}, stages={},
        )
        assert "registry-param-ambiguity" in {f.rule for f in findings}
        assert any(sim_field in f.message for f in findings)

    def test_findings_anchor_in_this_test_file(self):
        findings = check_registries(
            strategies={"drifty": _strategy(_drifted_factory, {"alpha", "beta"})},
            scenarios={}, stages={},
        )
        path, line = factory_location(_drifted_factory)
        assert findings[0].path == path
        assert findings[0].line == line
        assert path.endswith("test_analysis_check.py")

    def test_documented_params_parses_numpy_sections(self):
        assert documented_params(_documented_factory.__doc__) == {"alpha", "beta"}
        assert documented_params("no section here") is None
        multi = """Summary.

        Parameters
        ----------
        tsp_method, improve_tour : str
            A multi-name entry.
        seed : int
            Another.
        """
        assert documented_params(multi) == {"tsp_method", "improve_tour", "seed"}


# --------------------------------------------------------------------------- #
# fingerprint coverage
# --------------------------------------------------------------------------- #

@dataclasses.dataclass(frozen=True)
class _RunSpecWithNotes(RunSpec):
    """RunSpec grown by one field *without* a hashing decision."""

    notes: str = ""


class TestFingerprintCoverage:
    def test_live_declaration_is_clean(self):
        assert check_fingerprint_coverage() == []

    def test_new_spec_field_fails_the_build(self):
        # Acceptance criterion: adding a field to a spec dataclass without a
        # FINGERPRINT_COVERAGE entry or exemption must produce a finding.
        classes = dict(default_spec_classes())
        classes["RunSpec"] = _RunSpecWithNotes
        findings = check_fingerprint_coverage(spec_classes=classes)
        assert {f.rule for f in findings} == {"fpr-uncovered-field"}
        assert any("RunSpec.notes" in f.message for f in findings)

    def test_exemption_with_reason_clears_new_field(self):
        classes = dict(default_spec_classes())
        classes["RunSpec"] = _RunSpecWithNotes
        findings = check_fingerprint_coverage(
            spec_classes=classes,
            exempt={("RunSpec", "notes"): "free-form annotation, never affects "
                                          "simulation output"},
        )
        assert findings == []

    def test_exemption_without_reason_still_fails(self):
        classes = dict(default_spec_classes())
        classes["RunSpec"] = _RunSpecWithNotes
        findings = check_fingerprint_coverage(
            spec_classes=classes, exempt={("RunSpec", "notes"): "  "},
        )
        assert {f.rule for f in findings} == {"fpr-uncovered-field"}
        assert "without a reason" in findings[0].message

    def test_stale_coverage_class(self):
        import repro.store.fingerprint as fp

        coverage = dict(fp.FINGERPRINT_COVERAGE)
        coverage["GhostSpec"] = {"x": "hashed"}
        findings = check_fingerprint_coverage(coverage=coverage)
        assert {f.rule for f in findings} == {"fpr-stale-entry"}
        assert "GhostSpec" in findings[0].message

    def test_stale_field_and_stale_exemption(self):
        import repro.store.fingerprint as fp

        coverage = {name: dict(table) for name, table in
                    fp.FINGERPRINT_COVERAGE.items()}
        coverage["RunSpec"]["vanished"] = "hashed"
        findings = check_fingerprint_coverage(
            coverage=coverage, exempt={("RunSpec", "also_gone"): "why"},
        )
        assert {f.rule for f in findings} == {"fpr-stale-entry"}
        messages = " | ".join(f.message for f in findings)
        assert "vanished" in messages and "also_gone" in messages

    def test_hashed_claim_must_match_the_code(self):
        # An empty canonicaliser cannot be reading any field: every 'hashed'
        # claim (and the asdict wildcard) becomes a lie.
        findings = check_fingerprint_coverage(fingerprint_source="x = 1\n")
        fired = {f.rule for f in findings}
        assert fired == {"fpr-unread-field"}
        assert any("RunSpec.strategy" in f.message for f in findings)
        assert any("asdict" in f.message for f in findings)


# --------------------------------------------------------------------------- #
# schema drift
# --------------------------------------------------------------------------- #

class TestSchemaDrift:
    def test_live_schemas_match_the_golden(self):
        assert check_schema_drift() == []

    def test_added_field_is_drift(self):
        current = current_schemas()
        golden = json.loads(json.dumps(current))  # deep copy
        current["RunSpec"]["fields"]["notes"] = {"type": "str", "default": "''"}
        findings = check_schema_drift(current=current, golden=golden)
        assert {f.rule for f in findings} == {"schema-drift"}
        assert "RunSpec.notes" in findings[0].message

    def test_changed_default_is_drift(self):
        current = current_schemas()
        golden = json.loads(json.dumps(current))
        golden["RunSpec"]["fields"]["seed"]["default"] = "7"
        findings = check_schema_drift(current=current, golden=golden)
        assert {f.rule for f in findings} == {"schema-drift"}
        assert "default" in findings[0].message

    def test_removed_class_is_missing_golden(self):
        current = current_schemas()
        golden = {name: schema for name, schema in current.items()
                  if name != "RunSpec"}
        findings = check_schema_drift(current=current, golden=golden)
        assert {f.rule for f in findings} == {"schema-missing-golden"}
        assert "RunSpec" in findings[0].message

    def test_missing_golden_file(self, monkeypatch):
        import repro.analysis.schema_drift as sd

        def _raise(path=None):
            raise FileNotFoundError("no golden")

        monkeypatch.setattr(sd, "load_golden", _raise)
        findings = sd.check_schema_drift()
        assert {f.rule for f in findings} == {"schema-missing-golden"}

    def test_golden_round_trip(self, tmp_path):
        golden_file = write_golden(tmp_path / "golden.json")
        assert load_golden(golden_file) == current_schemas()

    def test_spec_schema_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            spec_schema(int)


# --------------------------------------------------------------------------- #
# suppressions and baseline
# --------------------------------------------------------------------------- #

class TestSuppressionsAndBaseline:
    def test_suppression_comment_parsing(self):
        source = (
            "x = 1\n"
            "y = f()  # repro: allow[det-wall-clock, det-env-branch]\n"
            "z = g()  # repro: allow[fpr-uncovered-field]\n"
        )
        table = suppressed_rules_by_line(source)
        assert table == {
            2: frozenset({"det-wall-clock", "det-env-branch"}),
            3: frozenset({"fpr-uncovered-field"}),
        }

    def test_split_suppressed_honours_both_channels(self):
        findings = [
            Finding("det-wall-clock", "a.py", 2, "clock"),
            Finding("det-env-branch", "a.py", 5, "env"),
            Finding("det-set-iteration", "b.py", 1, "set"),
        ]
        sources = {"a.py": "x\ny  # repro: allow[det-wall-clock]\n"}
        baseline = frozenset({("det-set-iteration", "b.py", "set")})
        kept, suppressed, baselined = split_suppressed(
            findings, source_cache=sources, baseline=baseline
        )
        assert [f.rule for f in kept] == ["det-env-branch"]
        assert suppressed == 1
        assert baselined == 1

    def test_baseline_round_trip_ignores_lines(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [Finding("det-wall-clock", "a.py", 42, "m")])
        keys = load_baseline(baseline_file)
        assert keys == frozenset({("det-wall-clock", "a.py", "m")})

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text("{\"oops\": true}")
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(baseline_file)

    def test_run_check_applies_a_written_baseline(self, tmp_path):
        fixture = FIXTURES / "det_wall_clock.py"
        first = run_check(paths=[fixture])
        assert first.findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, first.findings)
        second = run_check(paths=[fixture], baseline=baseline_file)
        assert second.findings == []
        assert second.baselined == len(first.findings)
        assert second.ok


# --------------------------------------------------------------------------- #
# orchestrator + CLI end-to-end
# --------------------------------------------------------------------------- #

class TestRunCheckEndToEnd:
    def test_repo_tree_passes_strict(self):
        # The acceptance bar: the repo's own code is clean under all four
        # analyzers (modulo the committed suppressions/baseline).
        report = run_check()
        assert report.errors == []
        assert report.analyzers == ("determinism", "registry", "fingerprint", "schema")
        assert report.findings == [], "\n".join(f.format() for f in report.findings)
        assert report.ok
        assert report.files_scanned > 30

    def test_only_filter_and_unknown_rule(self):
        report = run_check(paths=[FIXTURES / "det_wall_clock.py"],
                           only=["det-env-branch"])
        assert report.findings == []
        with pytest.raises(ValueError, match="unknown rule id"):
            run_check(only=["not-a-rule"])

    def test_render_text_and_json(self):
        report = run_check(paths=[FIXTURES / "det_wall_clock.py"])
        text = render_text(report)
        assert "det-wall-clock" in text and "finding(s)" in text
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["counts"]["det-wall-clock"] == len(report.findings)
        clean = CheckReport(findings=[], files_scanned=3)
        assert "check ok" in render_text(clean)

    def test_cli_strict_passes_on_repo(self, capsys):
        assert cli.main(["check", "--strict"]) == 0
        assert "check ok" in capsys.readouterr().out

    def test_cli_strict_fails_on_fixture(self, capsys):
        fixture = str(FIXTURES / "det_unseeded_random.py")
        assert cli.main(["check", "--strict", fixture]) == 1
        out = capsys.readouterr().out
        assert "det-unseeded-random" in out
        # without --strict the same findings are reported but do not gate
        assert cli.main(["check", fixture]) == 0

    def test_cli_json_report(self, capsys):
        fixture = str(FIXTURES / "det_env_branch.py")
        assert cli.main(["check", "--json", fixture]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert set(payload["counts"]) == {"det-env-branch"}

    def test_cli_rules_listing(self, capsys):
        assert cli.main(["check", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_cli_unknown_only_rule_is_usage_error(self, capsys):
        assert cli.main(["check", "--only", "bogus-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        fixture = str(FIXTURES / "det_set_iteration.py")
        baseline = str(tmp_path / "baseline.json")
        assert cli.main(["check", fixture, "--baseline", baseline,
                         "--write-baseline"]) == 0
        capsys.readouterr()
        assert cli.main(["check", "--strict", fixture, "--baseline", baseline]) == 0
        assert "check ok" in capsys.readouterr().out
