"""Unit tests for repro.network.mules.DataMule."""

import pytest

from repro.energy.battery import Battery
from repro.geometry.point import Point
from repro.network.mules import DataMule, MuleState


class TestConstruction:
    def test_defaults_match_paper(self):
        m = DataMule("m1", Point(0, 0))
        assert m.velocity == 2.0
        assert m.sensing_range == 10.0
        assert m.communication_range == 20.0
        assert m.state is MuleState.IDLE

    def test_position_coerced(self):
        assert DataMule("m1", (3, 4)).position == Point(3.0, 4.0)

    def test_invalid_velocity(self):
        with pytest.raises(ValueError):
            DataMule("m1", Point(0, 0), velocity=0.0)

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            DataMule("m1", Point(0, 0), sensing_range=-1.0)

    def test_remaining_energy_infinite_without_battery(self):
        assert DataMule("m1", Point(0, 0)).remaining_energy == float("inf")

    def test_remaining_energy_with_battery(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(500.0))
        assert m.remaining_energy == 500.0


class TestKinematics:
    def test_travel_time(self):
        m = DataMule("m1", Point(0, 0), velocity=2.0)
        assert m.travel_time(Point(0, 100)) == pytest.approx(50.0)

    def test_move_to_updates_position_and_returns_time(self):
        m = DataMule("m1", Point(0, 0), velocity=2.0)
        t = m.move_to(Point(0, 100))
        assert t == pytest.approx(50.0)
        assert m.position == Point(0, 100)

    def test_move_to_drains_energy(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(1000.0))
        m.move_to(Point(0, 100), move_cost_per_meter=8.0)
        assert m.battery.remaining == pytest.approx(200.0)

    def test_move_to_dies_when_energy_insufficient(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(100.0))
        m.move_to(Point(0, 100), move_cost_per_meter=8.0)
        assert m.state is MuleState.DEAD
        assert not m.alive

    def test_can_reach(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(100.0))
        assert m.can_reach(Point(0, 10), move_cost_per_meter=8.0)
        assert not m.can_reach(Point(0, 100), move_cost_per_meter=8.0)

    def test_can_reach_without_battery_always_true(self):
        assert DataMule("m1", Point(0, 0)).can_reach(Point(0, 1e9), 100.0)

    def test_position_after_interpolates(self):
        m = DataMule("m1", Point(0, 0), velocity=2.0)
        p = m.position_after(Point(0, 100), elapsed=10.0)
        assert p == Point(0, 20)

    def test_position_after_clamps_at_destination(self):
        m = DataMule("m1", Point(0, 0), velocity=2.0)
        assert m.position_after(Point(0, 10), elapsed=1000.0) == Point(0, 10)


class TestEnergyOperations:
    def test_collect_drains(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(10.0))
        m.collect(energy_cost=0.075)
        assert m.battery.remaining == pytest.approx(9.925)

    def test_collect_without_battery_noop(self):
        m = DataMule("m1", Point(0, 0))
        m.collect(energy_cost=0.075)
        assert m.alive

    def test_collect_can_kill(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(0.05))
        m.collect(energy_cost=0.075)
        assert m.state is MuleState.DEAD

    def test_recharge_full_restores_and_revives(self):
        m = DataMule("m1", Point(0, 0), battery=Battery(100.0))
        m.move_to(Point(0, 100), move_cost_per_meter=8.0)  # dies
        m.recharge_full()
        assert m.battery.remaining == 100.0
        assert m.state is not MuleState.DEAD

    def test_recharge_without_battery_noop(self):
        m = DataMule("m1", Point(0, 0))
        m.recharge_full()
        assert m.alive

    def test_buffer_starts_empty(self):
        assert len(DataMule("m1", Point(0, 0)).buffer) == 0

    def test_buffers_not_shared_between_mules(self):
        a = DataMule("m1", Point(0, 0))
        b = DataMule("m2", Point(0, 0))
        assert a.buffer is not b.buffer
