"""Unit tests for repro.core.wtctp (Section III algorithm)."""

import pytest

from repro.core.wtctp import build_weighted_patrolling_path, plan_wtctp
from repro.graphs.hamiltonian import build_hamiltonian_circuit
from repro.graphs.validation import validate_walk_visits, validate_weighted_patrolling_path
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_sd, per_target_intervals
from repro.workloads.generator import uniform_scenario


@pytest.fixture
def vip_tour(vip_scenario):
    return build_hamiltonian_circuit(vip_scenario.patrol_points(), start="sink")


class TestBuildWPP:
    def test_single_vip_structure_and_walk(self, vip_tour, vip_scenario):
        weights = vip_scenario.weights()
        structure, walk = build_weighted_patrolling_path(vip_tour, weights, "shortest")
        validate_weighted_patrolling_path(structure, weights)
        validate_walk_visits(walk, weights)
        assert walk.count("g4") == 2  # weight-2 VIP appears twice (walk repeats the start)

    def test_weight_defaults_to_one_for_missing_nodes(self, vip_tour):
        structure, walk = build_weighted_patrolling_path(vip_tour, {"g4": 3}, "shortest")
        assert structure.degree("g4") == 6
        assert structure.degree("g1") == 2

    def test_invalid_weight_rejected(self, vip_tour):
        with pytest.raises(ValueError):
            build_weighted_patrolling_path(vip_tour, {"g4": 0}, "shortest")

    def test_no_vip_leaves_tour_untouched(self, vip_tour):
        structure, walk = build_weighted_patrolling_path(vip_tour, {}, "shortest")
        assert structure.length() == pytest.approx(vip_tour.length())
        assert len(walk) - 1 == len(vip_tour)

    def test_wpp_longer_than_hamiltonian(self, vip_tour, vip_scenario):
        structure, _ = build_weighted_patrolling_path(vip_tour, vip_scenario.weights(), "shortest")
        assert structure.length() > vip_tour.length()

    def test_shortest_not_longer_than_balanced(self, vip_tour, vip_scenario):
        weights = vip_scenario.weights()
        s_short, _ = build_weighted_patrolling_path(vip_tour, weights, "shortest")
        s_bal, _ = build_weighted_patrolling_path(vip_tour, weights, "balanced")
        assert s_short.length() <= s_bal.length() + 1e-6

    def test_multiple_vips_higher_weight_processed_first(self):
        sc = uniform_scenario(num_targets=14, num_mules=2, seed=4, num_vips=3, vip_weight=3)
        tour = build_hamiltonian_circuit(sc.patrol_points(), start="sink")
        weights = sc.weights()
        structure, walk = build_weighted_patrolling_path(tour, weights, "balanced")
        validate_weighted_patrolling_path(structure, weights)
        validate_walk_visits(walk, weights)

    def test_deterministic_across_mules(self, vip_tour, vip_scenario):
        weights = vip_scenario.weights()
        _s1, w1 = build_weighted_patrolling_path(vip_tour, weights, "balanced")
        _s2, w2 = build_weighted_patrolling_path(vip_tour, weights, "balanced")
        assert w1 == w2


class TestPlanner:
    def test_plan_has_route_per_mule(self, vip_scenario):
        plan = plan_wtctp(vip_scenario)
        assert set(plan.routes) == {m.id for m in vip_scenario.mules}

    def test_metadata(self, vip_scenario):
        plan = plan_wtctp(vip_scenario, policy="shortest")
        assert plan.metadata["wpp_length"] >= plan.metadata["hamiltonian_length"]
        assert plan.metadata["policy"] == "shortest"
        assert "g4" in plan.metadata["vip_cycles"]
        assert len(plan.metadata["vip_cycles"]["g4"]) == 2

    def test_vip_cycle_lengths_sum_to_wpp_length(self, vip_scenario):
        plan = plan_wtctp(vip_scenario, policy="balanced")
        cycles = plan.metadata["vip_cycles"]["g4"]
        assert sum(cycles) == pytest.approx(plan.metadata["wpp_length"], rel=1e-6)

    def test_strategy_name_includes_policy(self, vip_scenario):
        assert "balanced" in plan_wtctp(vip_scenario, policy="balanced").strategy
        assert "shortest" in plan_wtctp(vip_scenario, policy="shortest").strategy

    def test_without_initialization(self, vip_scenario):
        plan = plan_wtctp(vip_scenario, location_initialization=False)
        assert all(r.start_position() is None for r in plan.routes.values())

    def test_unweighted_scenario_reduces_to_btctp_path(self, simple_scenario):
        from repro.core.btctp import plan_btctp

        wplan = plan_wtctp(simple_scenario)
        bplan = plan_btctp(simple_scenario)
        assert wplan.metadata["wpp_length"] == pytest.approx(bplan.metadata["path_length"])


class TestSimulatedBehaviour:
    def test_vip_visited_twice_per_lap(self, vip_scenario):
        plan = plan_wtctp(vip_scenario, policy="balanced")
        result = PatrolSimulator(vip_scenario, plan, SimulationConfig(horizon=40_000)).run()
        counts = {t: result.visit_count(t) for t in ("g4", "g1")}
        # per full traversal the VIP is visited twice as often as an NTP
        assert counts["g4"] >= 1.7 * counts["g1"]

    def test_vip_mean_interval_smaller_than_ntp(self, vip_scenario):
        plan = plan_wtctp(vip_scenario, policy="balanced")
        result = PatrolSimulator(vip_scenario, plan, SimulationConfig(horizon=40_000)).run()
        intervals = per_target_intervals(result)
        vip_mean = sum(intervals["g4"]) / len(intervals["g4"])
        ntp_means = [sum(v) / len(v) for t, v in intervals.items() if t not in ("g4",)]
        assert vip_mean < min(ntp_means)

    def test_balanced_policy_has_lower_sd_than_shortest_on_average(self):
        """Figure 10's claim, checked over several seeds with one mule per walk.

        The break-edge policy shapes the spacing of a VIP's occurrences along a
        single patrol walk, so the comparison is made with one data mule (with
        several mules the mule phase offsets interfere with the cycle spacing —
        see EXPERIMENTS.md).  The paper averages 20 runs; a few seeds suffice
        for the ordering.
        """
        totals = {"shortest": 0.0, "balanced": 0.0}
        for seed in (3, 9, 17):
            sc = uniform_scenario(num_targets=14, num_mules=1, seed=seed, num_vips=2, vip_weight=3)
            for policy in ("shortest", "balanced"):
                plan = plan_wtctp(sc, policy=policy)
                res = PatrolSimulator(sc.fresh_copy(), plan, SimulationConfig(horizon=80_000)).run()
                totals[policy] += average_sd(res)
        assert totals["balanced"] < totals["shortest"]

    def test_every_target_visited(self, vip_scenario):
        plan = plan_wtctp(vip_scenario)
        result = PatrolSimulator(vip_scenario, plan, SimulationConfig(horizon=40_000)).run()
        expected = {t.id for t in vip_scenario.targets} | {vip_scenario.sink.id}
        assert set(result.visited_targets()) == expected
