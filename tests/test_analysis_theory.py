"""Unit tests for repro.analysis.theory (closed-form steady-state predictions)."""

import pytest

from repro.analysis.theory import (
    analyze_loop,
    interval_lower_bound,
    predicted_interval_btctp,
    predicted_sd_for_offsets,
    vip_visit_offsets,
)
from repro.core.btctp import plan_btctp
from repro.core.wtctp import plan_wtctp
from repro.geometry.point import Point
from repro.sim.engine import PatrolSimulator, SimulationConfig
from repro.sim.metrics import average_sd, per_target_intervals
from repro.workloads.generator import uniform_scenario

SQUARE = {
    "a": Point(0, 0),
    "b": Point(100, 0),
    "c": Point(100, 100),
    "d": Point(0, 100),
}


class TestClosedForms:
    def test_predicted_interval_btctp(self):
        assert predicted_interval_btctp(4000.0, 4, 2.0) == pytest.approx(500.0)

    def test_predicted_interval_invalid(self):
        with pytest.raises(ValueError):
            predicted_interval_btctp(100.0, 0, 2.0)

    def test_lower_bound_smaller_than_any_tour_interval(self):
        # hull perimeter <= tour length, so the bound is below the achieved interval
        assert interval_lower_bound(300.0, 2, 2.0) <= predicted_interval_btctp(400.0, 2, 2.0)

    def test_vip_visit_offsets_combines_occurrences_and_mules(self):
        offsets = vip_visit_offsets([0.0, 200.0], [0.0, 50.0], length=400.0)
        assert offsets == [0.0, 150.0, 200.0, 350.0]

    def test_predicted_sd_zero_for_equal_spacing(self):
        # two occurrences half a lap apart, one mule: two equal gaps -> SD 0
        assert predicted_sd_for_offsets([0.0, 200.0], [0.0], 400.0, 2.0) == pytest.approx(0.0)

    def test_predicted_sd_worst_case_collision(self):
        # two occurrences half a lap apart AND two mules half a lap apart:
        # both mules hit the VIP simultaneously -> gaps {0, 200} -> large SD
        sd = predicted_sd_for_offsets([0.0, 200.0], [0.0, 200.0], 400.0, 2.0)
        assert sd > 50.0

    def test_single_visit_sd_zero(self):
        assert predicted_sd_for_offsets([10.0], [0.0], 400.0, 2.0) == 0.0


class TestAnalyzeLoop:
    def test_square_loop_basics(self):
        analysis = analyze_loop(["a", "b", "c", "d"], SQUARE, num_mules=2, velocity=2.0)
        assert analysis.length == pytest.approx(400.0)
        assert analysis.lap_time == pytest.approx(200.0)
        assert analysis.mean_interval("a") == pytest.approx(100.0)
        assert analysis.sd("a") == pytest.approx(0.0)
        assert analysis.average_sd() == pytest.approx(0.0)

    def test_repeated_node_counts_both_occurrences(self):
        loop = ["a", "b", "a", "c", "d"]
        analysis = analyze_loop(loop, SQUARE, num_mules=1, velocity=2.0)
        assert len(analysis.occurrences["a"]) == 2
        assert len(analysis.intervals_for("a")) == 2

    def test_explicit_offsets(self):
        analysis = analyze_loop(["a", "b", "c", "d"], SQUARE, mule_offsets=[0.0, 100.0],
                                velocity=2.0)
        assert analysis.mean_interval("b") == pytest.approx(100.0)

    def test_requires_exactly_one_offset_spec(self):
        with pytest.raises(ValueError):
            analyze_loop(["a", "b"], SQUARE, num_mules=2, mule_offsets=[0.0])
        with pytest.raises(ValueError):
            analyze_loop(["a", "b"], SQUARE)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analyze_loop([], SQUARE, num_mules=1)
        with pytest.raises(ValueError):
            analyze_loop(["a", "b"], SQUARE, num_mules=0)
        with pytest.raises(ValueError):
            analyze_loop(["a", "b"], SQUARE, num_mules=1, velocity=0.0)

    def test_summary_keys(self):
        analysis = analyze_loop(["a", "b", "c", "d"], SQUARE, num_mules=2)
        summary = analysis.summary()
        assert set(summary) == {"length", "lap_time", "num_mules", "max_interval", "average_sd"}


class TestTheoryMatchesSimulation:
    def test_btctp_prediction_matches_simulator(self):
        sc = uniform_scenario(num_targets=12, num_mules=3, seed=51)
        plan = plan_btctp(sc)
        analysis = analyze_loop(plan.metadata["tour"], sc.patrol_points(),
                                num_mules=sc.num_mules, velocity=sc.params.mule_velocity)
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=40_000)).run()
        measured = per_target_intervals(result)
        for target, intervals in measured.items():
            assert intervals  # visited at least twice
            assert intervals[0] == pytest.approx(analysis.mean_interval(target), rel=1e-6)
        assert average_sd(result) == pytest.approx(analysis.average_sd(), abs=1e-6)

    def test_wtctp_sd_prediction_matches_simulator(self):
        sc = uniform_scenario(num_targets=12, num_mules=2, seed=52, num_vips=1, vip_weight=3)
        plan = plan_wtctp(sc, policy="balanced")
        analysis = analyze_loop(plan.metadata["walk"], sc.patrol_points(),
                                num_mules=sc.num_mules, velocity=sc.params.mule_velocity)
        result = PatrolSimulator(sc, plan, SimulationConfig(horizon=120_000)).run()
        vip = next(t.id for t in sc.targets if t.is_vip)
        measured = per_target_intervals(result)[vip]
        predicted = sorted(analysis.intervals_for(vip))
        # the steady-state multiset of intervals repeats each lap; compare one lap's worth
        lap = len(predicted)
        observed = sorted(measured[lap: 2 * lap])
        for obs, pred in zip(observed, predicted):
            assert obs == pytest.approx(pred, rel=1e-3)
