"""Unit tests for repro.viz.ascii (field maps and sparklines)."""

import math

import pytest

from repro.core.btctp import plan_btctp
from repro.viz.ascii import ascii_field_map, ascii_route_map, series_panel, sparkline
from repro.workloads.generator import uniform_scenario
from repro.workloads.scenarios import single_vip_scenario


class TestFieldMap:
    def test_contains_all_markers(self):
        sc = uniform_scenario(num_targets=10, num_mules=2, seed=1,
                              with_recharge_station=True, mule_battery=1000.0)
        text = ascii_field_map(sc)
        assert "S" in text
        assert "o" in text
        assert "R" in text
        assert "legend" not in text  # legend is a separate line of symbols
        assert "sink" in text  # legend text

    def test_vip_marker(self):
        sc = single_vip_scenario(vip_weight=2)
        assert "V" in ascii_field_map(sc)

    def test_dimensions(self):
        sc = uniform_scenario(num_targets=5, num_mules=1, seed=2)
        text = ascii_field_map(sc, cols=40, rows=10, legend=False)
        lines = text.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 42 for line in lines)  # 40 cols + 2 borders

    def test_too_small_rejected(self):
        sc = uniform_scenario(num_targets=5, num_mules=1, seed=2)
        with pytest.raises(ValueError):
            ascii_field_map(sc, cols=5, rows=2)

    def test_legend_toggle(self):
        sc = uniform_scenario(num_targets=5, num_mules=1, seed=2)
        assert "target" in ascii_field_map(sc, legend=True)
        assert "target" not in ascii_field_map(sc, legend=False)


class TestRouteMap:
    def test_route_dots_drawn(self):
        sc = uniform_scenario(num_targets=8, num_mules=2, seed=3)
        plan = plan_btctp(sc)
        text = ascii_route_map(sc, plan.metadata["tour"])
        assert "." in text
        assert "S" in text

    def test_unknown_nodes_ignored(self):
        sc = uniform_scenario(num_targets=5, num_mules=1, seed=3)
        text = ascii_route_map(sc, ["g1", "nonexistent", "g2"])
        assert "S" in text


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_nan_rendered_as_space(self):
        assert sparkline([1.0, math.nan, 2.0])[1] == " "

    def test_empty_or_all_nan(self):
        assert sparkline([]) == ""
        assert sparkline([math.nan]) == ""


class TestSeriesPanel:
    def test_one_line_per_series_with_range(self):
        text = series_panel({"tctp": [100.0] * 10, "random": [50, 500, 100, 900]})
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert "[100 .. 100]" in lines[0]
        assert "[50 .. 900]" in lines[1]

    def test_long_series_downsampled(self):
        text = series_panel({"s": list(range(200))}, width=20)
        spark_part = text.split()[1]
        assert len(spark_part) <= 21

    def test_empty(self):
        assert series_panel({}) == ""
