"""Unit tests for repro.graphs.hamiltonian (circuit construction heuristics)."""

import math

import numpy as np
import pytest

from repro.geometry.point import Point, distance
from repro.graphs.hamiltonian import (
    TOUR_BUILDERS,
    build_hamiltonian_circuit,
    christofides_tour,
    convex_hull_insertion_tour,
    nearest_neighbor_tour,
)
from repro.graphs.validation import validate_tour


def _random_coords(n, seed=0, scale=800.0):
    rng = np.random.default_rng(seed)
    return {f"g{i}": Point(float(x), float(y)) for i, (x, y) in enumerate(rng.uniform(0, scale, (n, 2)))}


def _optimal_square_length():
    return 400.0


SQUARE = {
    "a": Point(0, 0),
    "b": Point(100, 0),
    "c": Point(100, 100),
    "d": Point(0, 100),
}


class TestConvexHullInsertion:
    def test_visits_every_node_once(self):
        coords = _random_coords(30, seed=1)
        tour = convex_hull_insertion_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))

    def test_square_is_optimal(self):
        tour = convex_hull_insertion_tour(SQUARE)
        assert tour.length() == pytest.approx(_optimal_square_length())

    def test_interior_point_inserted(self):
        coords = dict(SQUARE, e=Point(50, 10))
        tour = convex_hull_insertion_tour(coords)
        assert set(tour.order) == set(coords)
        # e should be inserted on the bottom edge: tour length = 400 + small detour
        assert tour.length() < 450

    def test_counterclockwise_orientation(self):
        tour = convex_hull_insertion_tour(_random_coords(15, seed=3))
        assert tour.signed_area() > 0

    def test_deterministic(self):
        coords = _random_coords(25, seed=7)
        t1 = convex_hull_insertion_tour(coords)
        t2 = convex_hull_insertion_tour(coords)
        assert t1.order == t2.order

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convex_hull_insertion_tour({})

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_inputs(self, n):
        coords = {f"g{i}": Point(float(i * 10), float(i % 2)) for i in range(n)}
        tour = convex_hull_insertion_tour(coords)
        assert len(tour) == n

    def test_collinear_points(self):
        coords = {f"g{i}": Point(float(i * 10), 0.0) for i in range(6)}
        tour = convex_hull_insertion_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))
        assert tour.length() == pytest.approx(100.0)  # out and back along the line


class TestNearestNeighbor:
    def test_visits_every_node_once(self):
        coords = _random_coords(30, seed=2)
        tour = nearest_neighbor_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))

    def test_start_node_respected(self):
        coords = _random_coords(10, seed=2)
        tour = nearest_neighbor_tour(coords, start="g5")
        assert "g5" in tour.order

    def test_unknown_start_raises(self):
        with pytest.raises(KeyError):
            nearest_neighbor_tour(SQUARE, start="zzz")

    def test_square(self):
        tour = nearest_neighbor_tour(SQUARE, start="a")
        assert tour.length() == pytest.approx(400.0)


class TestChristofides:
    def test_visits_every_node_once(self):
        coords = _random_coords(15, seed=4)
        tour = christofides_tour(coords)
        validate_tour(tour, expected_nodes=list(coords))

    def test_square(self):
        tour = christofides_tour(SQUARE)
        assert tour.length() == pytest.approx(400.0)

    def test_within_christofides_bound_of_hull_insertion(self):
        coords = _random_coords(25, seed=5)
        chris = christofides_tour(coords).length()
        hull = convex_hull_insertion_tour(coords).length()
        # both are constant-factor heuristics; they should be in the same ballpark
        assert chris < 2.0 * hull
        assert hull < 2.0 * chris


class TestBuildHamiltonianCircuit:
    def test_default_method(self):
        coords = _random_coords(20, seed=6)
        tour = build_hamiltonian_circuit(coords)
        validate_tour(tour, expected_nodes=list(coords))

    def test_start_rotation(self):
        coords = _random_coords(20, seed=6)
        tour = build_hamiltonian_circuit(coords, start="g7")
        assert tour.order[0] == "g7"

    def test_improve_never_lengthens(self):
        coords = _random_coords(30, seed=8)
        plain = build_hamiltonian_circuit(coords, method="nearest-neighbor")
        improved = build_hamiltonian_circuit(coords, method="nearest-neighbor", improve=True)
        assert improved.length() <= plain.length() + 1e-6

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            build_hamiltonian_circuit(SQUARE, method="magic")

    @pytest.mark.parametrize("method", sorted(TOUR_BUILDERS))
    def test_all_methods_cover_all_nodes(self, method):
        coords = _random_coords(18, seed=9)
        tour = build_hamiltonian_circuit(coords, method=method)
        validate_tour(tour, expected_nodes=list(coords))

    def test_hull_insertion_reasonable_quality(self):
        # circuit over points on a circle: the optimal tour is the circle order
        coords = {
            f"g{i}": Point(400 + 200 * math.cos(2 * math.pi * i / 20),
                           400 + 200 * math.sin(2 * math.pi * i / 20))
            for i in range(20)
        }
        optimal = sum(
            distance(coords[f"g{i}"], coords[f"g{(i + 1) % 20}"]) for i in range(20)
        )
        tour = build_hamiltonian_circuit(coords)
        assert tour.length() == pytest.approx(optimal, rel=1e-6)
