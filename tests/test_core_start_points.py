"""Unit tests for repro.core.start_points (segmentation + location initialisation)."""

import pytest

from repro.core.start_points import (
    StartPointAssignment,
    assign_mules_to_start_points,
    compute_start_points,
)
from repro.geometry.point import Point, distance

SQUARE_COORDS = {
    "a": Point(0, 0),
    "b": Point(100, 0),
    "c": Point(100, 100),
    "d": Point(0, 100),
}
SQUARE_WALK = ["a", "b", "c", "d"]


class TestComputeStartPoints:
    def test_count(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 4)
        assert len(sps) == 4

    def test_first_start_point_is_northmost_node(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 2)
        # northmost tie between c(100,100) and d(0,100) broken by smaller x -> d? No:
        # the reference is the most-north *walk vertex*; ties break on smallest x => d.
        assert sps[0].position == Point(0, 100)

    def test_equal_arc_spacing(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 4)
        arcs = [sp.arc_length for sp in sps]
        diffs = [(arcs[(i + 1) % 4] - arcs[i]) % 400.0 for i in range(4)]
        assert all(d == pytest.approx(100.0) for d in diffs)

    def test_positions_lie_on_the_path(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 8)
        for sp in sps:
            on_edge = (
                sp.position.x in (0.0, 100.0) and 0 <= sp.position.y <= 100
            ) or (sp.position.y in (0.0, 100.0) and 0 <= sp.position.x <= 100)
            assert on_edge

    def test_entry_index_points_to_next_walk_node(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 4)
        for sp in sps:
            # start points coincide with vertices here, so the entry node is the vertex itself
            assert SQUARE_COORDS[SQUARE_WALK[sp.entry_index]].distance_to(sp.position) \
                <= 100.0

    def test_single_mule_gets_whole_path(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 1)
        assert len(sps) == 1
        assert sps[0].position == Point(0, 100)

    def test_more_mules_than_nodes(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 10)
        assert len(sps) == 10
        arcs = sorted(sp.arc_length for sp in sps)
        gaps = [(b - a) for a, b in zip(arcs, arcs[1:])]
        assert all(g == pytest.approx(40.0) for g in gaps)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_start_points(SQUARE_WALK, SQUARE_COORDS, 0)
        with pytest.raises(ValueError):
            compute_start_points([], SQUARE_COORDS, 2)

    def test_walk_with_repeated_nodes(self):
        # a W-TCTP walk can repeat a VIP; start-point computation must cope
        walk = ["a", "b", "a", "c", "d"]
        sps = compute_start_points(walk, SQUARE_COORDS, 3)
        assert len(sps) == 3


class TestAssignMules:
    def test_one_mule_per_start_point(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 3)
        mules = {"m1": Point(0, 90), "m2": Point(90, 10), "m3": Point(50, 50)}
        assignment = assign_mules_to_start_points(sps, mules)
        assert sorted(assignment.assignment.values()) == [0, 1, 2]

    def test_closest_claim_without_conflict(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 4)
        mules = {f"m{i}": sps[i].position for i in range(4)}
        assignment = assign_mules_to_start_points(sps, mules)
        for i in range(4):
            assert assignment.assignment[f"m{i}"] == i

    def test_conflict_resolved_by_energy(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 2)
        # both mules sit exactly on start point 0; the higher-energy one must move on
        mules = {"m1": sps[0].position, "m2": sps[0].position}
        energy = {"m1": 10.0, "m2": 100.0}
        assignment = assign_mules_to_start_points(sps, mules, energy)
        assert assignment.assignment["m1"] == 0
        assert assignment.assignment["m2"] == 1

    def test_all_mules_at_same_spot_still_converges(self):
        n = 6
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, n)
        mules = {f"m{i}": Point(50, 50) for i in range(n)}
        assignment = assign_mules_to_start_points(sps, mules)
        assert sorted(assignment.assignment.values()) == list(range(n))

    def test_mismatched_counts_rejected(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 3)
        with pytest.raises(ValueError):
            assign_mules_to_start_points(sps, {"m1": Point(0, 0)})

    def test_start_point_for_accessor(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 2)
        mules = {"m1": sps[0].position, "m2": sps[1].position}
        assignment = assign_mules_to_start_points(sps, mules)
        assert isinstance(assignment, StartPointAssignment)
        assert assignment.start_point_for("m2") == sps[assignment.assignment["m2"]]

    def test_without_energy_info_defaults_are_used(self):
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 2)
        mules = {"m1": Point(0, 99), "m2": Point(0, 98)}
        assignment = assign_mules_to_start_points(sps, mules, remaining_energy=None)
        assert sorted(assignment.assignment.values()) == [0, 1]

    def test_assignment_spacing_property(self):
        """After assignment, consecutive mules along the path are |P|/n apart in arc length."""
        sps = compute_start_points(SQUARE_WALK, SQUARE_COORDS, 4)
        mules = {f"m{i}": Point(10.0 * i, 5.0) for i in range(4)}
        assignment = assign_mules_to_start_points(sps, mules)
        arcs = sorted(sps[idx].arc_length for idx in assignment.assignment.values())
        gaps = [(b - a) for a, b in zip(arcs, arcs[1:])] + [400.0 - (arcs[-1] - arcs[0])]
        assert all(g == pytest.approx(100.0) for g in gaps)
