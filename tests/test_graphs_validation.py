"""Unit tests for repro.graphs.validation (executable versions of the paper's definitions)."""

import pytest

from repro.geometry.point import Point
from repro.graphs.multitour import MultiTour
from repro.graphs.tour import Tour
from repro.graphs.validation import (
    ValidationError,
    validate_tour,
    validate_walk_visits,
    validate_weighted_patrolling_path,
    validate_weighted_recharge_path,
)

COORDS = {
    "a": Point(0, 0),
    "b": Point(100, 0),
    "c": Point(100, 100),
    "d": Point(0, 100),
    "r": Point(50, 50),
}


def _cycle(nodes):
    mt = MultiTour({n: COORDS[n] for n in COORDS})
    for i, n in enumerate(nodes):
        mt.add_edge(n, nodes[(i + 1) % len(nodes)])
    return mt


class TestValidateTour:
    def test_valid(self, square_tour):
        validate_tour(square_tour)

    def test_expected_nodes_match(self, square_tour):
        validate_tour(square_tour, expected_nodes=["a", "b", "c", "d"])

    def test_missing_node_detected(self, square_tour):
        with pytest.raises(ValidationError):
            validate_tour(square_tour, expected_nodes=["a", "b", "c", "d", "e"])

    def test_extra_node_detected(self, square_tour):
        with pytest.raises(ValidationError):
            validate_tour(square_tour, expected_nodes=["a", "b", "c"])

    def test_empty_tour_rejected(self):
        with pytest.raises(ValueError):
            Tour([], {})


class TestValidateWPP:
    def test_plain_cycle_all_weight_one(self):
        mt = _cycle(["a", "b", "c", "d"])
        validate_weighted_patrolling_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1, "r": 1},
                                          require_all_nodes=False)

    def test_vip_degree_checked(self):
        mt = _cycle(["a", "b", "c", "d"])
        mt.break_edge("b", "c", "a")  # a now has 2 cycles
        weights = {"a": 2, "b": 1, "c": 1, "d": 1}
        validate_weighted_patrolling_path(mt, weights)

    def test_wrong_degree_rejected(self):
        mt = _cycle(["a", "b", "c", "d"])
        with pytest.raises(ValidationError):
            validate_weighted_patrolling_path(mt, {"a": 2, "b": 1, "c": 1, "d": 1})

    def test_disconnected_rejected(self):
        mt = MultiTour(COORDS)
        mt.add_edge("a", "b")
        mt.add_edge("b", "a")
        mt.add_edge("c", "d")
        mt.add_edge("d", "c")
        with pytest.raises(ValidationError):
            validate_weighted_patrolling_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1})

    def test_missing_target_rejected(self):
        mt = _cycle(["a", "b", "c"])
        with pytest.raises(ValidationError):
            validate_weighted_patrolling_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1})

    def test_missing_target_tolerated_when_not_required(self):
        mt = _cycle(["a", "b", "c"])
        weights = {"a": 1, "b": 1, "c": 1, "d": 1}
        validate_weighted_patrolling_path(mt, weights, require_all_nodes=False)

    def test_nonpositive_weight_rejected(self):
        mt = _cycle(["a", "b", "c", "d"])
        with pytest.raises(ValidationError):
            validate_weighted_patrolling_path(mt, {"a": 0, "b": 1, "c": 1, "d": 1})


class TestValidateWRP:
    def test_valid_recharge_path(self):
        mt = _cycle(["a", "b", "c", "d"])
        mt.break_edge("c", "d", "r")
        validate_weighted_recharge_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1}, "r")

    def test_missing_station_rejected(self):
        mt = _cycle(["a", "b", "c", "d"])
        with pytest.raises(ValidationError):
            validate_weighted_recharge_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1}, "missing")

    def test_station_with_no_edges_rejected(self):
        mt = _cycle(["a", "b", "c", "d"])
        # r exists as a node but is not wired into the cycle
        with pytest.raises(ValidationError):
            validate_weighted_recharge_path(mt, {"a": 1, "b": 1, "c": 1, "d": 1}, "r")


class TestValidateWalkVisits:
    def test_valid_walk(self):
        validate_walk_visits(["a", "b", "c", "d", "a"], {"a": 1, "b": 1, "c": 1, "d": 1})

    def test_vip_visited_twice(self):
        walk = ["a", "b", "a", "c", "d", "a"]
        validate_walk_visits(walk, {"a": 2, "b": 1, "c": 1, "d": 1})

    def test_wrong_count_rejected(self):
        with pytest.raises(ValidationError):
            validate_walk_visits(["a", "b", "c", "a"], {"a": 1, "b": 1, "c": 1, "d": 1})

    def test_unknown_node_rejected(self):
        with pytest.raises(ValidationError):
            validate_walk_visits(["a", "b", "x", "a"], {"a": 1, "b": 1})

    def test_extra_allowed_nodes(self):
        validate_walk_visits(["a", "b", "r", "a"], {"a": 1, "b": 1}, extra_allowed=["r"])

    def test_open_walk_counts_endpoints_once(self):
        # no closing repetition: every node counted exactly once
        validate_walk_visits(["a", "b", "c"], {"a": 1, "b": 1, "c": 1})


class TestEdgeCases:
    """PR-4 satellite: single-target, all-equal weights, weight-1 VIP checks."""

    def test_single_node_tour_valid(self):
        validate_tour(Tour(["only"], {"only": Point(0, 0)}), expected_nodes=["only"])

    def test_two_node_parallel_edge_wpp(self):
        mt = MultiTour({"sink": Point(0, 0), "t": Point(5, 0)})
        mt.add_edge("sink", "t")
        mt.add_edge("sink", "t")
        validate_weighted_patrolling_path(mt, {"sink": 1, "t": 1})

    def test_all_equal_weights_validated(self):
        mt = MultiTour({c: Point(i, 0) for i, c in enumerate("abc")})
        for pair in (("a", "b"), ("b", "c"), ("c", "a")):
            mt.add_edge(*pair)
            mt.add_edge(*pair)  # weight 2 everywhere: degree 4 at each node
        validate_weighted_patrolling_path(mt, {"a": 2, "b": 2, "c": 2})
        validate_walk_visits(["a", "b", "c", "a", "b", "c", "a"],
                             {"a": 2, "b": 2, "c": 2})

    def test_weight_one_vip_is_plain_cycle(self):
        # weight-1 "VIPs" demand degree 2 — i.e. no augmentation at all
        mt = MultiTour({c: Point(i, i) for i, c in enumerate("abcd")})
        for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
            mt.add_edge(*pair)
        validate_weighted_patrolling_path(mt, {c: 1 for c in "abcd"})
        validate_walk_visits(["a", "b", "c", "d", "a"], {c: 1 for c in "abcd"})

    def test_weight_one_walk_with_repeat_rejected(self):
        # visiting a weight-1 target twice per lap violates Definition 3
        with pytest.raises(ValidationError):
            validate_walk_visits(["a", "b", "a", "b", "a"], {"a": 1, "b": 1})
