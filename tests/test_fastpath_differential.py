"""Differential fuzz harness: batched vs scalar vs event-loop, byte for byte.

Draws seeded random :class:`~repro.runner.RunSpec` cases across scenario
families, strategies and simulator configs, and asserts that the execution
paths —

* the **batched** tensor pass (:func:`repro.sim.batchpath.batch_execute_records`),
* the **scalar** per-cell fast path (batchpath disabled),
* the **event loop** (``fast_path=False``),
* the **scalar-planned** per-cell path (vectorized planning kernels
  disabled, tour caches cleared so planning really reruns),

— produce byte-identical sanitized records for every case.  Cases the batch
(or the scalar fast path) declines are still checked: a fallback must land on
the same record, never a different one.

On a mismatch the failing case is greedily shrunk (fewer targets, fewer
mules, shorter horizon, defaults restored) before reporting, so the assertion
message carries a minimal reproducer.

The case count and the generator seed are fixed for CI but overridable::

    REPRO_FUZZ_SEED=123 REPRO_FUZZ_CASES=500 pytest tests/test_fastpath_differential.py
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.geometry.cache import clear_caches
from repro.planning import kernels
from repro.runner.campaign import _json_sanitize, execute_run
from repro.runner.spec import RunSpec
from repro.scenarios import ScenarioSpec
from repro.sim import batchpath
from repro.sim.engine import SimulationConfig

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260808"))
FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "200"))

FAMILIES = ["uniform", "grid-jitter", "clustered", "ring"]
STRATEGIES = [
    "b-tctp", "w-tctp", "rw-tctp", "chb", "sweep", "random",
    "b-tctp-cw", "sw-tctp", "cb-tctp", "crw-tctp", "staggered-chb",
]
HORIZONS = [800.0, 2_500.0, 6_000.0, 12_000.0]


# Recharge-loop strategies refuse to plan without a station to loop through.
NEEDS_RECHARGE = ("rw-tctp", "crw-tctp")


def draw_case(rng: np.random.Generator) -> dict:
    """One random case as a plain dict (plain dicts shrink and print well)."""
    case = {
        "family": FAMILIES[int(rng.integers(len(FAMILIES)))],
        "strategy": STRATEGIES[int(rng.integers(len(STRATEGIES)))],
        "num_targets": int(rng.integers(3, 13)),
        "num_mules": int(rng.integers(1, 5)),
        "num_vips": int(rng.integers(0, 3)),
        "data_rate_jitter": float(rng.choice([0.0, 0.0, 0.3])),
        "with_recharge_station": bool(rng.integers(2)),
        "horizon": float(rng.choice(HORIZONS)),
        "synchronized_start": bool(rng.integers(2)),
        "scenario_seed": int(rng.integers(1_000)) if rng.integers(2) else None,
        "mule_battery": 200_000.0 if rng.integers(4) == 0 else None,
        "seed": int(rng.integers(1_000_000)),
    }
    if case["strategy"] in NEEDS_RECHARGE:
        # Recharge-loop planning needs both the station and finite batteries
        # (untracked here: track_energy stays False, so the fast paths apply).
        case["with_recharge_station"] = True
        case["mule_battery"] = 150_000.0
    return case


def case_spec(case: dict, *, fast_path: bool = True) -> RunSpec:
    params = {
        "num_targets": case["num_targets"],
        "num_mules": case["num_mules"],
        "num_vips": case["num_vips"],
        "data_rate_jitter": case["data_rate_jitter"],
        "with_recharge_station": case["with_recharge_station"],
        "mule_battery": case["mule_battery"],
    }
    return RunSpec(
        strategy=case["strategy"],
        scenario=ScenarioSpec(case["family"], params, seed=case["scenario_seed"]),
        sim=SimulationConfig(
            horizon=case["horizon"],
            track_energy=False,
            synchronized_start=case["synchronized_start"],
            fast_path=fast_path,
        ),
        seed=case["seed"],
    )


def canonical(record: dict) -> str:
    return json.dumps(_json_sanitize(record), sort_keys=True)


def run_three_ways(case: dict) -> "tuple[str | None, dict]":
    """Returns ``(mismatch_description | None, path_flags)`` for one case."""
    spec = case_spec(case)
    batched = batchpath.batch_execute_records([spec, spec])[0]
    with batchpath.batchpath_disabled():
        scalar = execute_run(spec)
    event = execute_run(case_spec(case, fast_path=False))
    # Scalar-planning leg: clear the tour/plan memos first, else the cached
    # vector-built circuit would be served and the comparison would be vacuous.
    clear_caches()
    with batchpath.batchpath_disabled(), kernels.vector_disabled():
        scalar_planned = execute_run(spec)
    flags = {"batched": batched is not None}
    scalar_c = canonical(scalar)
    event_c = canonical(event)
    if scalar_c != event_c:
        return f"scalar != event loop\n scalar: {scalar_c}\n event:  {event_c}", flags
    scalar_planned_c = canonical(scalar_planned)
    if scalar_planned_c != scalar_c:
        return (
            "scalar-planned != vector-planned\n"
            f" scalar-planned: {scalar_planned_c}\n vector-planned: {scalar_c}"
        ), flags
    if batched is not None:
        batched_c = canonical(batched)
        if batched_c != scalar_c:
            return f"batched != scalar\n batched: {batched_c}\n scalar:  {scalar_c}", flags
    return None, flags


def shrink(case: dict) -> dict:
    """Greedy shrink: keep any single-field reduction that still mismatches."""
    candidates = [
        ("num_targets", 3), ("num_mules", 1), ("num_vips", 0),
        ("horizon", HORIZONS[0]), ("data_rate_jitter", 0.0),
        ("with_recharge_station", False), ("mule_battery", None),
        ("synchronized_start", True),
        ("scenario_seed", None), ("family", "uniform"), ("seed", 0),
    ]
    current = dict(case)
    progress = True
    while progress:
        progress = False
        for key, value in candidates:
            if current[key] == value:
                continue
            trial = dict(current)
            trial[key] = value
            try:
                mismatch, _ = run_three_ways(trial)
            except Exception:
                continue  # shrunk case fails differently; keep the original
            if mismatch is not None:
                current = trial
                progress = True
    return current


class TestDifferentialFuzz:
    def test_three_paths_agree_on_random_specs(self):
        rng = np.random.default_rng(FUZZ_SEED)
        batched_cases = 0
        for index in range(FUZZ_CASES):
            case = draw_case(rng)
            mismatch, flags = run_three_ways(case)
            if mismatch is not None:
                minimal = shrink(case)
                final, _ = run_three_ways(minimal)
                pytest.fail(
                    f"case {index} (seed {FUZZ_SEED}) diverged.\n"
                    f"original: {json.dumps(case, sort_keys=True)}\n"
                    f"shrunk:   {json.dumps(minimal, sort_keys=True)}\n"
                    f"{final or mismatch}"
                )
            batched_cases += flags["batched"]
        # The sweep must actually exercise the tensor pass, not fuzz fallbacks.
        assert batched_cases >= FUZZ_CASES // 4, (
            f"only {batched_cases}/{FUZZ_CASES} cases rode the batch path"
        )

    def test_generator_is_deterministic(self):
        a = [draw_case(np.random.default_rng(7)) for _ in range(5)]
        b = [draw_case(np.random.default_rng(7)) for _ in range(5)]
        assert a == b

    def test_batch_handles_mixed_eligibility_without_reordering(self):
        """A batch mixing eligible and fallback cells keeps records aligned."""
        rng = np.random.default_rng(FUZZ_SEED + 1)
        cases = [draw_case(rng) for _ in range(12)]
        specs = [case_spec(c) for c in cases]
        pre = batchpath.batch_execute_records(specs)
        with batchpath.batchpath_disabled():
            expected = [execute_run(s) for s in specs]
        for record, want in zip(pre, expected):
            if record is not None:
                assert canonical(record) == canonical(want)

    def test_fuzz_seed_env_override(self):
        """REPRO_FUZZ_SEED reshapes the sweep (read at import; spot-check here)."""
        assert FUZZ_SEED == int(os.environ.get("REPRO_FUZZ_SEED", "20260808"))
        case = draw_case(np.random.default_rng(FUZZ_SEED))
        assert set(case) == {
            "family", "strategy", "num_targets", "num_mules", "num_vips",
            "data_rate_jitter", "with_recharge_station", "mule_battery",
            "horizon", "synchronized_start", "scenario_seed", "seed",
        }


class TestEventLoopStaysAuthoritative:
    """The three-way harness's event-loop leg really is the plain engine."""

    def test_event_leg_ignores_batch_switch(self):
        case = draw_case(np.random.default_rng(FUZZ_SEED + 2))
        spec = case_spec(case, fast_path=False)
        first = execute_run(spec)
        with batchpath.batchpath_disabled():
            second = execute_run(spec)
        assert canonical(first) == canonical(second)
