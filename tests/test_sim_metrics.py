"""Unit tests for repro.sim.metrics (visiting intervals, DCDT, SD)."""

import math

import pytest

from repro.sim.metrics import (
    average_dcdt,
    average_sd,
    dcdt_series,
    delivery_latencies,
    interval_statistics,
    max_visiting_interval,
    per_target_intervals,
    per_target_sd,
    visiting_intervals,
)
from repro.sim.recorder import DeliveryRecord, SimulationResult, VisitRecord


def _result(visit_times: dict[str, list[float]]) -> SimulationResult:
    r = SimulationResult(strategy="test", horizon=10_000.0)
    for target, times in visit_times.items():
        for t in times:
            r.visits.append(VisitRecord(t, target, "m1"))
    return r


class TestVisitingIntervals:
    def test_basic_diffs(self):
        assert visiting_intervals([10, 30, 60]) == [20, 30]

    def test_unsorted_input_is_sorted(self):
        assert visiting_intervals([60, 10, 30]) == [20, 30]

    def test_include_first(self):
        assert visiting_intervals([10, 30], include_first=True) == [10, 20]

    def test_include_first_with_initial_time(self):
        assert visiting_intervals([10, 30], initial_time=5.0, include_first=True) == [5, 20]

    def test_empty(self):
        assert visiting_intervals([]) == []

    def test_single_visit(self):
        assert visiting_intervals([42.0]) == []
        assert visiting_intervals([42.0], include_first=True) == [42.0]


class TestPerTargetIntervals:
    def test_all_targets_reported(self):
        r = _result({"g1": [0, 10, 20], "g2": [5, 25]})
        intervals = per_target_intervals(r)
        assert intervals["g1"] == [10, 10]
        assert intervals["g2"] == [20]

    def test_target_filter(self):
        r = _result({"g1": [0, 10], "g2": [5, 25]})
        assert set(per_target_intervals(r, targets=["g1"])) == {"g1"}


class TestDcdtSeries:
    def test_constant_intervals_give_flat_series(self):
        r = _result({"g1": [100, 200, 300, 400], "g2": [150, 250, 350, 450]})
        series = dcdt_series(r, num_points=4, include_first=False)
        assert series[:3] == pytest.approx([100.0, 100.0, 100.0])

    def test_include_first_uses_initial_wait(self):
        r = _result({"g1": [100, 200]})
        series = dcdt_series(r, num_points=2, include_first=True)
        assert series[0] == pytest.approx(100.0)
        assert series[1] == pytest.approx(100.0)

    def test_missing_indices_are_nan(self):
        r = _result({"g1": [100, 200]})
        series = dcdt_series(r, num_points=5, include_first=False)
        assert math.isnan(series[3])

    def test_mean_over_targets(self):
        r = _result({"g1": [0, 100], "g2": [0, 300]})
        series = dcdt_series(r, num_points=1, include_first=False)
        assert series[0] == pytest.approx(200.0)


class TestAverages:
    def test_average_dcdt(self):
        r = _result({"g1": [0, 100, 200], "g2": [0, 300, 600]})
        assert average_dcdt(r) == pytest.approx((100 + 100 + 300 + 300) / 4)

    def test_average_dcdt_empty(self):
        assert math.isnan(average_dcdt(_result({})))

    def test_per_target_sd_zero_for_constant(self):
        r = _result({"g1": [0, 100, 200, 300]})
        assert per_target_sd(r)["g1"] == pytest.approx(0.0)

    def test_per_target_sd_matches_paper_formula(self):
        # intervals 10 and 30: sample std with n-1 = sqrt(((10-20)^2+(30-20)^2)/1) = sqrt(200)
        r = _result({"g1": [0, 10, 40]})
        assert per_target_sd(r)["g1"] == pytest.approx(math.sqrt(200.0))

    def test_per_target_sd_nan_with_single_interval(self):
        r = _result({"g1": [0, 10]})
        assert math.isnan(per_target_sd(r)["g1"])

    def test_average_sd_ignores_nan_targets(self):
        r = _result({"g1": [0, 10, 20], "g2": [0, 5]})
        assert average_sd(r) == pytest.approx(0.0)

    def test_average_sd_all_nan(self):
        r = _result({"g1": [0, 10]})
        assert math.isnan(average_sd(r))

    def test_max_visiting_interval(self):
        r = _result({"g1": [0, 100], "g2": [0, 700]})
        assert max_visiting_interval(r) == pytest.approx(700.0)

    def test_max_visiting_interval_empty(self):
        assert math.isnan(max_visiting_interval(_result({})))


class TestDeliveryLatencies:
    def test_latency_extraction(self):
        r = _result({})
        r.deliveries.append(DeliveryRecord(200.0, "m1", "g1", 0.0, 100.0, 100.0, 10.0))
        r.deliveries.append(DeliveryRecord(300.0, "m1", "g2", 100.0, 200.0, 200.0, 10.0))
        assert delivery_latencies(r) == pytest.approx([150.0, 150.0])


class TestIntervalStatistics:
    def test_summary_fields(self):
        r = _result({"g1": [0, 100, 200], "g2": [0, 100, 200]})
        stats = interval_statistics(r)
        assert stats["mean_interval"] == pytest.approx(100.0)
        assert stats["max_interval"] == pytest.approx(100.0)
        assert stats["average_sd"] == pytest.approx(0.0)
        assert stats["targets_visited"] == 2
        assert stats["total_intervals"] == 4

    def test_empty_result(self):
        stats = interval_statistics(_result({}))
        assert math.isnan(stats["mean_interval"])
        assert stats["total_intervals"] == 0
